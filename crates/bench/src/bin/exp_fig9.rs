//! EXP-F9 — Figure 9: summary of all experiments.
//!
//! Re-runs every experimental campaign (Figures 4–8) and reports, per
//! experiment and aggregated, the relative cost and relative work of
//! `Het`, the best dynamic heuristic with the optimized layout
//! (`ODDOML`) and Toledo's `BMM` — the paper's headline comparison —
//! plus the steady-state upper-bound ratio (paper: mean 2.29×, worst
//! 3.42×). Uniform flags: `--smoke` (two sizes / four platforms /
//! smaller Lyon job), `--json <path>` (every instance of every
//! campaign), `--threads <n>` (each campaign fans out over the pool).

use stargemm_bench::{
    fig7_grid, fig8_grid, geomean, instances_to_json, size_grid, to_csv, write_json, write_results,
    Cli, Instance,
};
use stargemm_core::algorithms::Algorithm;
use stargemm_core::steady::bandwidth_centric;
use stargemm_platform::{presets, Platform};

fn main() {
    let cli = Cli::parse();
    // The campaigns reuse the exact grids of the standalone binaries
    // (same smoke sizing, sliced before anything is simulated).
    let sized = |p: &Platform| Instance::run_grid(&size_grid(p, &cli), cli.threads);
    let mut campaigns: Vec<(String, Vec<Instance>)> = Vec::new();
    campaigns.push(("fig4-memory".into(), sized(&presets::het_memory())));
    campaigns.push(("fig5-comm".into(), sized(&presets::het_comm())));
    campaigns.push(("fig6-comp".into(), sized(&presets::het_comp())));

    let grid7 = fig7_grid(&cli);
    let p7: Vec<Platform> = grid7.iter().map(|(p, _)| p.clone()).collect();
    campaigns.push((
        "fig7-fullhet".into(),
        Instance::run_grid(&grid7, cli.threads),
    ));

    campaigns.push((
        "fig8-lyon".into(),
        Instance::run_grid(&fig8_grid(&cli), cli.threads),
    ));

    let spotlight = [Algorithm::Het, Algorithm::Oddoml, Algorithm::Bmm];
    let mut out = String::new();
    out.push_str("Figure 9. Summary of experiments (relative cost | relative work)\n");
    out.push_str(&format!("{:<16}", "experiment"));
    for a in spotlight {
        out.push_str(&format!("{:>16}", a.name()));
    }
    out.push('\n');

    let mut all: Vec<Instance> = Vec::new();
    for (name, instances) in &campaigns {
        out.push_str(&format!("{name:<16}"));
        for a in spotlight {
            let cost = geomean(instances.iter().map(|i| i.relative_cost(a)));
            let work = geomean(instances.iter().map(|i| i.relative_work(a)));
            out.push_str(&format!("{:>8.3}|{:<7.3}", cost, work));
        }
        out.push('\n');
        all.extend(instances.iter().cloned());
    }

    out.push_str("\nAggregates over all instances:\n");
    for a in spotlight {
        let costs: Vec<f64> = all.iter().map(|i| i.relative_cost(a)).collect();
        let mean = geomean(costs.iter().copied());
        let worst = costs.iter().copied().fold(0.0, f64::max);
        out.push_str(&format!(
            "  {:<7} relative cost: geomean {:.3}, worst {:.3}\n",
            a.name(),
            mean,
            worst
        ));
    }
    // Layout gain: ODDOML vs BMM; selection gain: Het vs ODDOML (paper:
    // 19% and a further 10%, 27% total).
    let gain = |x: Algorithm, y: Algorithm| {
        let ratios: Vec<f64> = all
            .iter()
            .map(|i| i.result(y).makespan() / i.result(x).makespan())
            .collect();
        geomean(ratios)
    };
    out.push_str(&format!(
        "  memory-layout gain (BMM/ODDOML makespan):       {:.3}  (paper ≈ 1.23)\n",
        gain(Algorithm::Oddoml, Algorithm::Bmm)
    ));
    out.push_str(&format!(
        "  +resource-selection gain (BMM/Het makespan):    {:.3}  (paper ≈ 1.37)\n",
        gain(Algorithm::Het, Algorithm::Bmm)
    ));

    // Steady-state upper bound vs Het's achieved throughput.
    let mut ratios = Vec::new();
    let mut eval = |platform: &Platform, inst: &Instance| {
        if let Some(s) = &inst.result(Algorithm::Het).stats {
            let bound = bandwidth_centric(platform, inst.job.r).throughput;
            ratios.push(bound / s.throughput());
        }
    };
    // Per-campaign pairing for figs 4-6 (platform constant per campaign).
    for (idx, p) in [
        presets::het_memory(),
        presets::het_comm(),
        presets::het_comp(),
    ]
    .into_iter()
    .enumerate()
    {
        for inst in &campaigns[idx].1 {
            eval(&p, inst);
        }
    }
    for (p, inst) in p7.iter().zip(campaigns[3].1.iter()) {
        eval(p, inst);
    }
    for (p, inst) in [presets::lyon(true), presets::lyon(false)]
        .iter()
        .zip(campaigns[4].1.iter())
    {
        eval(p, inst);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let worst = ratios.iter().copied().fold(0.0, f64::max);
    out.push_str(&format!(
        "  steady-state bound / Het throughput: mean {:.2}, worst {:.2}  (paper: 2.29 / 3.42)\n",
        mean, worst
    ));

    print!("{out}");
    if let Ok(p) = write_results("fig9.txt", &out) {
        eprintln!("(written to {})", p.display());
    }
    if let Ok(p) = write_results("fig9_all.csv", &to_csv(&all)) {
        eprintln!("(written to {})", p.display());
    }
    if let Some(path) = &cli.json {
        write_json(path, &instances_to_json("fig9", &all));
    }
    if let Some(path) = &cli.trace_out {
        let (p, j) = &grid7[0];
        stargemm_bench::obs::emit_gemm_trace(path, p, j, Algorithm::Het);
    }
    if let Some(path) = &cli.attr_out {
        let (p, j) = &grid7[0];
        stargemm_bench::obs::emit_gemm_attr(path, p, j, Algorithm::Het);
    }
}
