//! EXP-OOC — the conclusion's open question: does the maximum re-use
//! layout help *out-of-core* algorithms?
//!
//! An out-of-core product is the single-worker case with the disk as the
//! master: `m` = RAM capacity in blocks, `c` = per-block disk transfer
//! time, `w` = in-core block-update time. We compare the maximum re-use
//! layout against Toledo's equal-thirds layout (the standard out-of-core
//! scheme) across RAM sizes and disk speeds, simulated on the same
//! engine as everything else.

use serde::json::Value;
use serde::Serialize;
use stargemm_bench::{write_json, write_results, Cli, SweepSpec};
use stargemm_core::algorithms::{run_algorithm, Algorithm};
use stargemm_core::bounds::{maxreuse_ccr_asymptotic, toledo_ccr_asymptotic};
use stargemm_core::maxreuse::simulate_max_reuse;
use stargemm_core::Job;
use stargemm_platform::{Platform, WorkerSpec};

struct Row {
    m: usize,
    disk_mbs: f64,
    maxreuse: f64,
    toledo: f64,
    ccr_mr: f64,
    ccr_tol: f64,
}

impl Serialize for Row {
    fn to_value(&self) -> Value {
        Value::object([
            ("ram_blocks", self.m.to_value()),
            ("disk_mbs", self.disk_mbs.to_value()),
            ("maxreuse_makespan", self.maxreuse.to_value()),
            ("toledo_makespan", self.toledo.to_value()),
            ("gain", (self.toledo / self.maxreuse).to_value()),
            ("ccr_maxreuse", self.ccr_mr.to_value()),
            ("ccr_toledo", self.ccr_tol.to_value()),
        ])
    }
}

fn main() {
    let cli = Cli::parse();
    let q = 80;
    let w = 5.12e-4; // 2 GFLOP/s kernel
    let job = if cli.smoke {
        Job::new(16, 16, 16, q)
    } else {
        Job::new(64, 64, 64, q) // 5120³ scalars out of core
    };
    let mut out = String::new();
    out.push_str("Out-of-core product: maximum re-use layout vs Toledo thirds\n");
    out.push_str("(single machine; disk = the master of the star)\n\n");
    out.push_str(&format!(
        "{:>10} {:>12} {:>12} {:>12} {:>9} {:>11} {:>11}\n",
        "RAM (blk)", "disk MB/s", "maxreuse(s)", "Toledo(s)", "gain", "CCR mr", "CCR tol"
    ));
    let grid: Vec<(usize, f64)> = [300usize, 1_200, 4_800]
        .into_iter()
        .flat_map(|m| [50.0f64, 200.0, 800.0].into_iter().map(move |d| (m, d)))
        .collect();
    let outcome = SweepSpec::new("ooc", cli.threads).run(&grid, |&(m, disk_mbs)| {
        let c = (q * q * 8) as f64 / (disk_mbs * 1e6);
        let spec = WorkerSpec::new(c, w, m);
        let mr = simulate_max_reuse(&job, spec).expect("fits");
        let platform = Platform::new("ooc", vec![spec]);
        let tol = run_algorithm(&platform, &job, Algorithm::Bmm).expect("fits");
        Row {
            m,
            disk_mbs,
            maxreuse: mr.makespan,
            toledo: tol.makespan,
            ccr_mr: mr.ccr(),
            ccr_tol: tol.ccr(),
        }
    });
    eprintln!("{}", outcome.summary());
    for r in &outcome.rows {
        out.push_str(&format!(
            "{:>10} {:>12.0} {:>12.1} {:>12.1} {:>9.3} {:>11.4} {:>11.4}\n",
            r.m,
            r.disk_mbs,
            r.maxreuse,
            r.toledo,
            r.toledo / r.maxreuse,
            r.ccr_mr,
            r.ccr_tol,
        ));
    }
    out.push_str(&format!(
        "\nasymptotic CCR ratio (Toledo/maxreuse) at m=4800: {:.3} (≈ √3)\n",
        toledo_ccr_asymptotic(4_800) / maxreuse_ccr_asymptotic(4_800)
    ));
    out.push_str(
        "Gains approach the CCR ratio when the disk is the bottleneck and\n\
         vanish when the product is compute-bound — the layout helps\n\
         out-of-core exactly where it helps distributed platforms.\n",
    );
    print!("{out}");
    if let Ok(p) = write_results("exp_ooc.txt", &out) {
        eprintln!("(written to {})", p.display());
    }
    if let Some(path) = &cli.json {
        write_json(path, &outcome.to_json());
    }
    if let Some(path) = &cli.trace_out {
        // The representative out-of-core cell: 1200 RAM blocks, 200 MB/s.
        let c = (q * q * 8) as f64 / (200.0 * 1e6);
        let platform = Platform::new("ooc", vec![WorkerSpec::new(c, w, 1_200)]);
        stargemm_bench::obs::emit_gemm_trace(path, &platform, &job, Algorithm::Bmm);
    }
    if let Some(path) = &cli.attr_out {
        let c = (q * q * 8) as f64 / (200.0 * 1e6);
        let platform = Platform::new("ooc", vec![WorkerSpec::new(c, w, 1_200)]);
        stargemm_bench::obs::emit_gemm_attr(path, &platform, &job, Algorithm::Bmm);
    }
}
