//! Pinned perf trajectory: kernel events/sec, heap high-water,
//! cancellation counts, sweep per-cell wall times — and the net-engine
//! leg (`BENCH_net.json`): threaded vs reactor throughput, the
//! reactor's worker-scaling curve, and the netmodel zero-allocation
//! steady-state assertion.
//!
//! CI runs `exp_perf --smoke --json BENCH_kernel.json --net-baseline
//! ci/BENCH_net_baseline.json` and uploads both artifacts, so kernel,
//! sweep, or net-engine regressions show up as steps in the trajectory
//! across commits (and a >20 % reactor throughput drop fails the job
//! outright). The workloads are shared with `benches/kernel.rs` and the
//! library tests (see [`stargemm_bench::perf`] and
//! [`stargemm_bench::netperf`]); this binary is the cheap always-on
//! sampling pass, the criterion bench the statistically careful one.

use stargemm_bench::netperf::{
    self, net_report_json, net_trajectory, netmodel_steady_state_bytes, render_net_table,
};
use stargemm_bench::perf::{
    check_kernel_baseline, kernel_trajectory, perf_report_json, render_kernel_table,
    sweep_cell_times,
};
use stargemm_bench::{write_json, write_results, Cli};

// Every heap sample in this binary (kernel heap high-water, net-engine
// heap high-water, the netmodel steady-state delta) flows through the
// counting allocator.
#[global_allocator]
static ALLOC: netperf::CountingAlloc = netperf::CountingAlloc;

fn main() {
    let cli = Cli::parse();
    let (pending, events) = if cli.smoke {
        (1_024, 50_000)
    } else {
        (1_024, 500_000)
    };

    let kernel = kernel_trajectory(pending, events);
    let table = render_kernel_table(&kernel);
    print!("{table}");

    let cells = sweep_cell_times(&cli);
    println!("\nsweep per-cell wall time (serial):");
    for c in &cells {
        println!("{:<28}{:>10.3}s", c.cell, c.wall_secs);
    }

    // The net-engine leg. The head-to-head width keeps the threaded
    // engine honest (it spawns ~2 OS threads per worker); the scaling
    // curve is reactor-only — the whole point is reaching star widths
    // the thread-per-worker model cannot.
    let (head_to_head, curve): (usize, &[usize]) = (256, &[512, 1024, 2048]);
    let steady = netmodel_steady_state_bytes(256, 1_000);
    assert_eq!(
        steady, 0,
        "netmodel re-share steady state allocated {steady} bytes"
    );
    let net = net_trajectory(head_to_head, curve);
    println!("\nnet engine (netmodel steady-state alloc: {steady} B):");
    print!("{}", render_net_table(&net));
    let net_json = net_report_json(&net, steady);

    let json = perf_report_json(&kernel, &cells);
    if let Ok(p) = write_results("perf.txt", &table) {
        eprintln!("(written to {})", p.display());
    }
    if let Some(path) = &cli.json {
        write_json(path, &json);
        // BENCH_net.json rides next to the kernel artifact.
        let net_path = path.with_file_name("BENCH_net.json");
        write_json(&net_path, &net_json);
    }
    if let Some(path) = &cli.trace_out {
        stargemm_bench::obs::emit_default_trace(path);
    }
    if let Some(path) = &cli.attr_out {
        stargemm_bench::obs::emit_default_attr(path);
    }
    if let Some(base_path) = &cli.net_baseline {
        let baseline = read_baseline(
            base_path,
            "{\"workers\": <n>, \"events_per_sec\": <events/sec>}",
        );
        match netperf::check_net_baseline(&baseline, &net) {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        }
    }
    if let Some(base_path) = &cli.kernel_baseline {
        let baseline = read_baseline(
            base_path,
            "{\"hold\": <events/sec>, \"cancel_half\": <events/sec>, \"drain\": <events/sec>}",
        );
        match check_kernel_baseline(&baseline, &kernel) {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
        }
    }
}

/// Reads a committed baseline file, turning a missing or unreadable
/// path into a CLI error that names the expected schema instead of a
/// panic.
fn read_baseline(path: &std::path::Path, schema: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read baseline {}: {e}", path.display());
            eprintln!("expected a committed JSON file of the form {schema}");
            std::process::exit(1);
        }
    }
}
