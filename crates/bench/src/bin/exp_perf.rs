//! Pinned perf trajectory: kernel events/sec, heap high-water,
//! cancellation counts, and sweep per-cell wall times.
//!
//! CI runs `exp_perf --smoke --json BENCH_kernel.json` and uploads the
//! artifact, so kernel or sweep regressions show up as steps in the
//! trajectory across commits. The workloads are shared with
//! `benches/kernel.rs` (see [`stargemm_bench::perf`]); this binary is
//! the cheap always-on sampling pass, the criterion bench the
//! statistically careful one.

use stargemm_bench::perf::{
    kernel_trajectory, perf_report_json, render_kernel_table, sweep_cell_times,
};
use stargemm_bench::{write_json, write_results, Cli};

fn main() {
    let cli = Cli::parse();
    let (pending, events) = if cli.smoke {
        (1_024, 50_000)
    } else {
        (1_024, 500_000)
    };

    let kernel = kernel_trajectory(pending, events);
    let table = render_kernel_table(&kernel);
    print!("{table}");

    let cells = sweep_cell_times(&cli);
    println!("\nsweep per-cell wall time (serial):");
    for c in &cells {
        println!("{:<28}{:>10.3}s", c.cell, c.wall_secs);
    }

    let json = perf_report_json(&kernel, &cells);
    if let Ok(p) = write_results("perf.txt", &table) {
        eprintln!("(written to {})", p.display());
    }
    if let Some(path) = &cli.json {
        write_json(path, &json);
    }
    if let Some(path) = &cli.trace_out {
        stargemm_bench::obs::emit_default_trace(path);
    }
}
