//! EXP-DYN — beyond the paper: dynamic platforms, worker churn, and
//! adaptive online scheduling.
//!
//! Sweeps jitter/churn regimes over a heterogeneous star and compares
//! `AdaptiveHet` (EWMA estimation + drift-triggered re-balancing +
//! crash recovery) against the paper's static `Het` plan (crash
//! recovery only — "HetGuard") and Toledo's `BMM` (jitter regimes only:
//! the raw pool policy is crash-oblivious). Every makespan is checked
//! against the trace-aware steady-state lower bound.
//!
//! Every (scenario, policy) cell is an independent simulation, so the
//! whole sweep fans out over the thread pool (`--threads`, default all
//! cores); results — table, `results/dynamic.txt`, and the `--json`
//! artifact — are identical whatever the fan-out width.
//!
//! ```sh
//! cargo run --release -p stargemm-bench --bin exp_dynamic            # full sweep
//! cargo run --release -p stargemm-bench --bin exp_dynamic -- --smoke # CI-sized
//! cargo run ... -- --smoke --threads 2 --json results/bench_dynamic.json
//! ```

use serde::json::Value;
use serde::Serialize;
use stargemm_bench::{write_json, write_results, Cli, SweepSpec};
use stargemm_core::algorithms::{build_policy, Algorithm};
use stargemm_core::Job;
use stargemm_dyn::model::{DynPlatform, DynProfile};
use stargemm_dyn::{
    churn_scenario, degradation_scenario, dyn_makespan_lower_bound, random_scenario,
    AdaptiveMaster, AdaptiveStats, ScenarioConfig,
};
use stargemm_platform::{Platform, WorkerSpec};
use stargemm_sim::Simulator;

/// Which policy a sweep cell runs.
#[derive(Clone, Copy, Debug)]
enum PolicyKind {
    Adaptive,
    Guarded,
    Static(Algorithm),
}

/// One cell of the sweep grid: a scenario/policy pair (plus the
/// scenario's lower bound, computed once per scenario).
struct Cell {
    scenario: &'static str,
    dp: DynPlatform,
    job: Job,
    bound: f64,
    kind: PolicyKind,
}

/// One (scenario, policy) measurement.
struct Row {
    scenario: &'static str,
    policy: String,
    makespan: Option<f64>,
    bound: f64,
    adaptive: Option<AdaptiveStats>,
}

impl Serialize for Row {
    fn to_value(&self) -> Value {
        let stat = |get: fn(&AdaptiveStats) -> u64| self.adaptive.as_ref().map(get).to_value();
        Value::object([
            ("scenario", self.scenario.to_value()),
            ("policy", self.policy.to_value()),
            ("makespan", self.makespan.to_value()),
            ("lower_bound", self.bound.to_value()),
            ("reassigned_chunks", stat(|s| s.reassigned_chunks)),
            ("rebalances", stat(|s| s.rebalances)),
            ("crashes", stat(|s| s.crashes)),
            ("joins", stat(|s| s.joins)),
        ])
    }
}

fn platform() -> Platform {
    Platform::new(
        "dyn-sweep",
        vec![
            WorkerSpec::new(0.20, 0.10, 60),
            WorkerSpec::new(0.25, 0.12, 60),
            WorkerSpec::new(0.30, 0.15, 40),
            WorkerSpec::new(0.50, 0.30, 40),
        ],
    )
}

fn scenarios(base: &Platform, smoke: bool) -> Vec<(&'static str, DynPlatform, bool)> {
    // (name, scenario, has_churn)
    let jit = |c, w, seed| {
        random_scenario(
            base,
            ScenarioConfig {
                c_jitter: c,
                w_jitter: w,
                crash_prob: 0.0,
                segment_len: 30.0,
                horizon: 600.0,
                rejoin_prob: 0.0,
            },
            seed,
        )
    };
    let mut v = vec![
        ("static", DynPlatform::constant(base.clone()), false),
        ("jitter-mild", jit(1.5, 1.2, 11), false),
        ("jitter-wild", jit(3.0, 2.0, 12), false),
        (
            "degrade-1x8",
            degradation_scenario(base, 1, 8.0, 25.0).expect("valid scenario"),
            false,
        ),
        (
            "crash-top",
            churn_scenario(base, &[(0, 40.0, f64::INFINITY)]).expect("valid scenario"),
            true,
        ),
    ];
    if !smoke {
        v.push((
            "churn-2",
            churn_scenario(base, &[(0, 40.0, f64::INFINITY), (2, 20.0, 120.0)])
                .expect("valid scenario"),
            true,
        ));
        // The acceptance combination: a top worker dies while another
        // degrades ×10.
        let mut combo = degradation_scenario(base, 1, 10.0, 10.0).expect("valid scenario");
        let churn = churn_scenario(base, &[(0, 40.0, f64::INFINITY)]).expect("valid scenario");
        combo.profile = DynProfile::new(
            combo
                .profile
                .workers()
                .iter()
                .zip(churn.profile.workers())
                .map(|(a, b)| {
                    stargemm_dyn::model::WorkerDyn::new(
                        a.c_scale.clone(),
                        a.w_scale.clone(),
                        b.downtime.clone(),
                    )
                })
                .collect(),
        );
        v.push(("crash+jitter", combo, true));
    }
    v
}

/// The sweep grid: every scenario × applicable policy, in report order.
fn grid(base: &Platform, job: Job, smoke: bool) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (name, dp, churny) in scenarios(base, smoke) {
        let bound = dyn_makespan_lower_bound(&dp.base, &dp.profile, &job);
        let mut kinds = vec![PolicyKind::Adaptive, PolicyKind::Guarded];
        if !churny {
            // Raw static policies execute fine under pure jitter — the
            // engine stretches their durations; they just never react.
            kinds.push(PolicyKind::Static(Algorithm::Bmm));
        }
        cells.extend(kinds.into_iter().map(|kind| Cell {
            scenario: name,
            dp: dp.clone(),
            job,
            bound,
            kind,
        }));
    }
    cells
}

/// Runs one sweep cell (executed on a pool worker).
fn run_cell(cell: &Cell) -> Row {
    let (policy_name, makespan, adaptive) = match cell.kind {
        PolicyKind::Adaptive | PolicyKind::Guarded => {
            let adapt = matches!(cell.kind, PolicyKind::Adaptive);
            let mut policy = if adapt {
                AdaptiveMaster::adaptive_het(&cell.dp.base, &cell.job).expect("layout fits")
            } else {
                AdaptiveMaster::guarded_het(&cell.dp.base, &cell.job).expect("layout fits")
            };
            let makespan = Simulator::new_dyn(cell.dp.clone())
                .run(&mut policy)
                .map(|s| s.makespan)
                .ok();
            let name = if adapt { "AdaptiveHet" } else { "HetGuard" };
            (name.to_string(), makespan, Some(policy.stats()))
        }
        PolicyKind::Static(alg) => {
            let makespan = build_policy(&cell.dp.base, &cell.job, alg)
                .ok()
                .and_then(|mut p| {
                    Simulator::new_dyn(cell.dp.clone())
                        .run(&mut p)
                        .map(|s| s.makespan)
                        .ok()
                });
            (alg.name().to_string(), makespan, None)
        }
    };
    Row {
        scenario: cell.scenario,
        policy: policy_name,
        makespan,
        bound: cell.bound,
        adaptive,
    }
}

fn render(rows: &[Row]) -> String {
    let mut out =
        String::from("Dynamic platforms: AdaptiveHet vs static Het/BMM (model time, seconds)\n");
    out.push_str(&format!(
        "{:<14}{:>13}{:>11}{:>12}{:>8}{:>7}{:>7}\n",
        "scenario", "policy", "makespan", "bound", "m/b", "reasgn", "rebal"
    ));
    for r in rows {
        let (mk, ratio) = match r.makespan {
            Some(m) => (format!("{m:.1}"), format!("{:.2}", m / r.bound)),
            None => ("-".into(), "-".into()),
        };
        let (reasgn, rebal) = match r.adaptive {
            Some(s) => (s.reassigned_chunks.to_string(), s.rebalances.to_string()),
            None => ("-".into(), "-".into()),
        };
        out.push_str(&format!(
            "{:<14}{:>13}{:>11}{:>12.1}{:>8}{:>7}{:>7}\n",
            r.scenario, r.policy, mk, r.bound, ratio, reasgn, rebal
        ));
    }
    out
}

fn main() {
    let cli = Cli::parse();
    let base = platform();
    let job = if cli.smoke {
        Job::new(8, 6, 12, 2)
    } else {
        Job::new(16, 10, 24, 2)
    };

    let cells = grid(&base, job, cli.smoke);
    let outcome = SweepSpec::new("dynamic", cli.threads).run(&cells, run_cell);
    eprintln!("{}", outcome.summary());
    let rows = &outcome.rows;

    // Sanity: nothing may beat its trace-aware lower bound.
    for r in rows {
        if let Some(m) = r.makespan {
            assert!(
                m >= r.bound - 1e-9,
                "{}/{} beats the lower bound: {m} < {}",
                r.scenario,
                r.policy,
                r.bound
            );
        }
    }

    let table = render(rows);
    print!("{table}");
    if let Ok(p) = write_results("dynamic.txt", &table) {
        eprintln!("(written to {})", p.display());
    }
    if let Some(path) = &cli.json {
        write_json(path, &outcome.to_json());
    }
    if cli.trace_out.is_some() || cli.attr_out.is_some() {
        // The representative dynamic cell: AdaptiveHet through the
        // crash-top scenario (a top worker dies mid-run), so the trace
        // shows crash, chunk reassignment, and recovery events.
        let dp = scenarios(&base, true)
            .into_iter()
            .find(|(name, _, _)| *name == "crash-top")
            .map(|(_, dp, _)| dp)
            .expect("crash-top is always in the grid");
        let mut policy = AdaptiveMaster::adaptive_het(&base, &job).expect("layout fits");
        let (res, events, _) = stargemm_bench::obs::record_with(|obs| {
            Simulator::new_dyn(dp).run_observed(&mut policy, obs)
        });
        let stats = res.expect("crash-top run succeeds");
        if let Some(path) = &cli.trace_out {
            stargemm_bench::obs::write_perfetto(path, &events);
        }
        if let Some(path) = &cli.attr_out {
            stargemm_bench::obs::write_folded_stacks(path, &events, stats.makespan);
        }
    }
}
