//! EXP-DYN — beyond the paper: dynamic platforms, worker churn, and
//! adaptive online scheduling.
//!
//! Sweeps jitter/churn regimes over a heterogeneous star and compares
//! `AdaptiveHet` (EWMA estimation + drift-triggered re-balancing +
//! crash recovery) against the paper's static `Het` plan (crash
//! recovery only — "HetGuard") and Toledo's `BMM` (jitter regimes only:
//! the raw pool policy is crash-oblivious). Every makespan is checked
//! against the trace-aware steady-state lower bound.
//!
//! ```sh
//! cargo run --release -p stargemm-bench --bin exp_dynamic            # full sweep
//! cargo run --release -p stargemm-bench --bin exp_dynamic -- --smoke # CI-sized
//! cargo run ... -- --json results/bench_dynamic.json                 # machine-readable
//! ```

use stargemm_bench::{json_escape, json_f64, json_flag, write_json, write_results};
use stargemm_core::algorithms::{build_policy, Algorithm};
use stargemm_core::Job;
use stargemm_dyn::model::{DynPlatform, DynProfile};
use stargemm_dyn::{
    churn_scenario, degradation_scenario, dyn_makespan_lower_bound, random_scenario,
    AdaptiveMaster, AdaptiveStats, ScenarioConfig,
};
use stargemm_platform::{Platform, WorkerSpec};
use stargemm_sim::Simulator;

/// One (scenario, policy) measurement.
struct Row {
    scenario: &'static str,
    policy: String,
    makespan: Option<f64>,
    bound: f64,
    adaptive: Option<AdaptiveStats>,
}

fn platform() -> Platform {
    Platform::new(
        "dyn-sweep",
        vec![
            WorkerSpec::new(0.20, 0.10, 60),
            WorkerSpec::new(0.25, 0.12, 60),
            WorkerSpec::new(0.30, 0.15, 40),
            WorkerSpec::new(0.50, 0.30, 40),
        ],
    )
}

fn scenarios(base: &Platform, smoke: bool) -> Vec<(&'static str, DynPlatform, bool)> {
    // (name, scenario, has_churn)
    let jit = |c, w, seed| {
        random_scenario(
            base,
            ScenarioConfig {
                c_jitter: c,
                w_jitter: w,
                crash_prob: 0.0,
                segment_len: 30.0,
                horizon: 600.0,
                rejoin_prob: 0.0,
            },
            seed,
        )
    };
    let mut v = vec![
        ("static", DynPlatform::constant(base.clone()), false),
        ("jitter-mild", jit(1.5, 1.2, 11), false),
        ("jitter-wild", jit(3.0, 2.0, 12), false),
        (
            "degrade-1x8",
            degradation_scenario(base, 1, 8.0, 25.0),
            false,
        ),
        (
            "crash-top",
            churn_scenario(base, &[(0, 40.0, f64::INFINITY)]),
            true,
        ),
    ];
    if !smoke {
        v.push((
            "churn-2",
            churn_scenario(base, &[(0, 40.0, f64::INFINITY), (2, 20.0, 120.0)]),
            true,
        ));
        // The acceptance combination: a top worker dies while another
        // degrades ×10.
        let mut combo = degradation_scenario(base, 1, 10.0, 10.0);
        let churn = churn_scenario(base, &[(0, 40.0, f64::INFINITY)]);
        combo.profile = DynProfile::new(
            combo
                .profile
                .workers()
                .iter()
                .zip(churn.profile.workers())
                .map(|(a, b)| {
                    stargemm_dyn::model::WorkerDyn::new(
                        a.c_scale.clone(),
                        a.w_scale.clone(),
                        b.downtime.clone(),
                    )
                })
                .collect(),
        );
        v.push(("crash+jitter", combo, true));
    }
    v
}

fn run_adaptive(
    scenario: &'static str,
    dp: &DynPlatform,
    job: &Job,
    bound: f64,
    adapt: bool,
) -> Row {
    let mut policy = if adapt {
        AdaptiveMaster::adaptive_het(&dp.base, job).expect("layout fits")
    } else {
        AdaptiveMaster::guarded_het(&dp.base, job).expect("layout fits")
    };
    let makespan = Simulator::new_dyn(dp.clone())
        .run(&mut policy)
        .map(|s| s.makespan)
        .ok();
    Row {
        scenario,
        policy: if adapt { "AdaptiveHet" } else { "HetGuard" }.into(),
        makespan,
        bound,
        adaptive: Some(policy.stats()),
    }
}

fn run_static_alg(
    scenario: &'static str,
    dp: &DynPlatform,
    job: &Job,
    bound: f64,
    alg: Algorithm,
) -> Row {
    let makespan = build_policy(&dp.base, job, alg).ok().and_then(|mut p| {
        Simulator::new_dyn(dp.clone())
            .run(&mut p)
            .map(|s| s.makespan)
            .ok()
    });
    Row {
        scenario,
        policy: alg.name().into(),
        makespan,
        bound,
        adaptive: None,
    }
}

fn render(rows: &[Row]) -> String {
    let mut out =
        String::from("Dynamic platforms: AdaptiveHet vs static Het/BMM (model time, seconds)\n");
    out.push_str(&format!(
        "{:<14}{:>13}{:>11}{:>12}{:>8}{:>7}{:>7}\n",
        "scenario", "policy", "makespan", "bound", "m/b", "reasgn", "rebal"
    ));
    for r in rows {
        let (mk, ratio) = match r.makespan {
            Some(m) => (format!("{m:.1}"), format!("{:.2}", m / r.bound)),
            None => ("-".into(), "-".into()),
        };
        let (reasgn, rebal) = match r.adaptive {
            Some(s) => (s.reassigned_chunks.to_string(), s.rebalances.to_string()),
            None => ("-".into(), "-".into()),
        };
        out.push_str(&format!(
            "{:<14}{:>13}{:>11}{:>12.1}{:>8}{:>7}{:>7}\n",
            r.scenario, r.policy, mk, r.bound, ratio, reasgn, rebal
        ));
    }
    out
}

fn to_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"dynamic\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let (reasgn, rebal, crashes, joins) = match r.adaptive {
            Some(s) => (
                s.reassigned_chunks.to_string(),
                s.rebalances.to_string(),
                s.crashes.to_string(),
                s.joins.to_string(),
            ),
            None => ("null".into(), "null".into(), "null".into(), "null".into()),
        };
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"policy\": \"{}\", \"makespan\": {}, \"lower_bound\": {}, \"reassigned_chunks\": {}, \"rebalances\": {}, \"crashes\": {}, \"joins\": {}}}{}\n",
            json_escape(r.scenario),
            json_escape(&r.policy),
            r.makespan.map_or("null".into(), json_f64),
            json_f64(r.bound),
            reasgn,
            rebal,
            crashes,
            joins,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let base = platform();
    let job = if smoke {
        Job::new(8, 6, 12, 2)
    } else {
        Job::new(16, 10, 24, 2)
    };

    let mut rows = Vec::new();
    for (name, dp, churny) in scenarios(&base, smoke) {
        let bound = dyn_makespan_lower_bound(&dp.base, &dp.profile, &job);
        rows.push(run_adaptive(name, &dp, &job, bound, true));
        rows.push(run_adaptive(name, &dp, &job, bound, false));
        if !churny {
            // Raw static policies execute fine under pure jitter — the
            // engine stretches their durations; they just never react.
            rows.push(run_static_alg(name, &dp, &job, bound, Algorithm::Bmm));
        }
    }

    // Sanity: nothing may beat its trace-aware lower bound.
    for r in &rows {
        if let Some(m) = r.makespan {
            assert!(
                m >= r.bound - 1e-9,
                "{}/{} beats the lower bound: {m} < {}",
                r.scenario,
                r.policy,
                r.bound
            );
        }
    }

    let table = render(&rows);
    print!("{table}");
    if let Ok(p) = write_results("dynamic.txt", &table) {
        eprintln!("(written to {})", p.display());
    }
    if let Some(path) = json_flag(&args) {
        write_json(&path, &to_json(&rows));
    }
}
