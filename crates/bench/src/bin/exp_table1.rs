//! EXP-T1 — Table 1: the steady-state linear program.
//!
//! Solves the LP with the dense simplex and cross-checks the
//! bandwidth-centric greedy (they must agree — the greedy is the LP's
//! closed-form optimum) on every platform of the experimental section.
//! Uniform flags: `--smoke` (preset platforms only), `--json <path>`
//! (one row per platform), `--threads <n>` (platforms solve
//! concurrently).

use serde::json::Value;
use serde::Serialize;
use stargemm_bench::{write_json, write_results, Cli, SweepSpec};
use stargemm_core::steady::{bandwidth_centric, lp_throughput};
use stargemm_platform::{presets, random::figure7_random_platforms};

struct Row {
    platform: String,
    greedy: f64,
    simplex: f64,
    agree: bool,
    enrolled: usize,
}

impl Serialize for Row {
    fn to_value(&self) -> Value {
        Value::object([
            ("platform", self.platform.to_value()),
            ("greedy", self.greedy.to_value()),
            ("simplex", self.simplex.to_value()),
            ("agree", self.agree.to_value()),
            ("enrolled", self.enrolled.to_value()),
        ])
    }
}

fn main() {
    let cli = Cli::parse();
    let mut platforms = vec![
        presets::homogeneous(8),
        presets::het_memory(),
        presets::het_comm(),
        presets::het_comp(),
        presets::fully_het(2.0),
        presets::fully_het(4.0),
        presets::lyon(true),
        presets::lyon(false),
    ];
    if !cli.smoke {
        platforms.extend(figure7_random_platforms(2008));
    }

    let outcome = SweepSpec::new("table1", cli.threads).run(&platforms, |p| {
        let ss = bandwidth_centric(p, 100);
        let lp = lp_throughput(p, 100);
        Row {
            platform: p.name.clone(),
            greedy: ss.throughput,
            simplex: lp,
            agree: (ss.throughput - lp).abs() / lp.max(1e-12) < 1e-6,
            enrolled: ss.enrolled.len(),
        }
    });

    eprintln!("{}", outcome.summary());
    let mut out = String::new();
    out.push_str("Table 1: steady-state throughput (block updates/s), greedy vs simplex\n");
    out.push_str(&format!(
        "{:<22} {:>12} {:>12} {:>10} {:>9}\n",
        "platform", "greedy", "simplex LP", "agree", "enrolled"
    ));
    for r in &outcome.rows {
        out.push_str(&format!(
            "{:<22} {:>12.2} {:>12.2} {:>10} {:>9}\n",
            r.platform,
            r.greedy,
            r.simplex,
            if r.agree { "yes" } else { "NO" },
            r.enrolled,
        ));
        assert!(r.agree, "greedy must match the LP on {}", r.platform);
    }
    print!("{out}");
    if let Ok(path) = write_results("exp_table1.txt", &out) {
        eprintln!("(written to {})", path.display());
    }
    if let Some(path) = &cli.json {
        write_json(path, &outcome.to_json());
    }
    if let Some(path) = &cli.trace_out {
        stargemm_bench::obs::emit_default_trace(path);
    }
    if let Some(path) = &cli.attr_out {
        stargemm_bench::obs::emit_default_attr(path);
    }
}
