//! EXP-T1 — Table 1: the steady-state linear program.
//!
//! Solves the LP with the dense simplex and cross-checks the
//! bandwidth-centric greedy (they must agree — the greedy is the LP's
//! closed-form optimum) on every platform of the experimental section.

use stargemm_bench::write_results;
use stargemm_core::steady::{bandwidth_centric, lp_throughput};
use stargemm_platform::{presets, random::figure7_random_platforms};

fn main() {
    let mut out = String::new();
    out.push_str("Table 1: steady-state throughput (block updates/s), greedy vs simplex\n");
    out.push_str(&format!(
        "{:<22} {:>12} {:>12} {:>10} {:>9}\n",
        "platform", "greedy", "simplex LP", "agree", "enrolled"
    ));
    let mut platforms = vec![
        presets::homogeneous(8),
        presets::het_memory(),
        presets::het_comm(),
        presets::het_comp(),
        presets::fully_het(2.0),
        presets::fully_het(4.0),
        presets::lyon(true),
        presets::lyon(false),
    ];
    platforms.extend(figure7_random_platforms(2008));
    for p in &platforms {
        let ss = bandwidth_centric(p, 100);
        let lp = lp_throughput(p, 100);
        let agree = (ss.throughput - lp).abs() / lp.max(1e-12) < 1e-6;
        out.push_str(&format!(
            "{:<22} {:>12.2} {:>12.2} {:>10} {:>9}\n",
            p.name,
            ss.throughput,
            lp,
            if agree { "yes" } else { "NO" },
            ss.enrolled.len(),
        ));
        assert!(agree, "greedy must match the LP on {}", p.name);
    }
    print!("{out}");
    if let Ok(path) = write_results("exp_table1.txt", &out) {
        eprintln!("(written to {})", path.display());
    }
}
