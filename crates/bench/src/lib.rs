//! Experiment harness: shared utilities for regenerating every table and
//! figure of the paper (see `EXPERIMENTS.md` for the index).
//!
//! Each `src/bin/exp_*.rs` binary reproduces one artifact; this library
//! holds the common machinery —
//!
//! * running the seven competitors on a platform/job grid and computing
//!   the paper's *relative cost* and *relative work* metrics,
//! * the [`sweep`] runner that fans a scenario grid out over a thread
//!   pool with grid-order (hence thread-count-independent) results,
//! * the [`cli`] flags (`--smoke`/`--json`/`--threads`) shared by every
//!   experiment binary,
//! * serde-backed JSON export (one serializer for all `--json` output)
//!   plus aligned text tables and CSV.

pub mod cli;
pub mod netperf;
pub mod obs;
pub mod perf;
pub mod sweep;

use serde::json::Value;
use serde::Serialize;
use stargemm_core::algorithms::Algorithm;
use stargemm_core::Job;
use stargemm_obs::{Attribution, RunMetrics};
use stargemm_platform::Platform;
use stargemm_sim::RunStats;

pub use cli::Cli;
pub use sweep::{parallel_map, SweepOutcome, SweepSpec};

/// Result of one algorithm on one instance.
#[derive(Clone, Debug)]
pub struct AlgResult {
    pub algorithm: Algorithm,
    pub stats: Option<RunStats>,
    /// Bound-gap metrics derived from the stats (None on failure).
    pub metrics: Option<RunMetrics>,
    /// Conserved makespan attribution of the run (None on failure).
    pub attribution: Option<Attribution>,
    /// Error string when the run failed (e.g. no feasible layout).
    pub error: Option<String>,
}

impl AlgResult {
    /// Makespan, or infinity for failed runs.
    pub fn makespan(&self) -> f64 {
        self.stats.as_ref().map_or(f64::INFINITY, |s| s.makespan)
    }

    /// The paper's work metric (makespan × enrolled processors).
    pub fn work(&self) -> f64 {
        self.stats.as_ref().map_or(f64::INFINITY, |s| s.work())
    }
}

/// One experiment instance: every algorithm on a platform and job.
#[derive(Clone, Debug)]
pub struct Instance {
    pub platform_name: String,
    pub job: Job,
    pub results: Vec<AlgResult>,
}

impl Instance {
    /// Runs all seven algorithms (each under a recorder, so the
    /// artifact can carry the makespan attribution next to the metrics
    /// block — recording is observation-only, the stats are identical
    /// to an unrecorded run).
    pub fn run(platform: &Platform, job: &Job) -> Instance {
        let results = Algorithm::all()
            .into_iter()
            .map(|alg| match obs::record_algorithm(platform, job, alg) {
                Ok((stats, events, _)) => {
                    let metrics = obs::gemm_run_metrics(platform, job, &stats);
                    let attribution = Attribution::from_events(&events, stats.makespan);
                    AlgResult {
                        algorithm: alg,
                        stats: Some(stats),
                        metrics: Some(metrics),
                        attribution: Some(attribution),
                        error: None,
                    }
                }
                Err(e) => AlgResult {
                    algorithm: alg,
                    stats: None,
                    metrics: None,
                    attribution: None,
                    error: Some(e.to_string()),
                },
            })
            .collect();
        Instance {
            platform_name: platform.name.clone(),
            job: *job,
            results,
        }
    }

    /// Runs a `(platform, job)` grid on `threads` workers — the standard
    /// figure protocol, parallel. Results come back in grid order.
    pub fn run_grid(grid: &[(Platform, Job)], threads: usize) -> Vec<Instance> {
        parallel_map(threads, grid, |_, (p, j)| Instance::run(p, j))
    }

    /// Best (smallest) makespan across algorithms.
    pub fn best_makespan(&self) -> f64 {
        self.results
            .iter()
            .map(AlgResult::makespan)
            .fold(f64::INFINITY, f64::min)
    }

    /// Best (smallest) work across algorithms.
    pub fn best_work(&self) -> f64 {
        self.results
            .iter()
            .map(AlgResult::work)
            .fold(f64::INFINITY, f64::min)
    }

    /// The paper's *relative cost* of one algorithm on this instance:
    /// its makespan divided by the best makespan achieved here.
    pub fn relative_cost(&self, alg: Algorithm) -> f64 {
        self.result(alg).makespan() / self.best_makespan()
    }

    /// The paper's *relative work*.
    pub fn relative_work(&self, alg: Algorithm) -> f64 {
        self.result(alg).work() / self.best_work()
    }

    /// Result entry for `alg`.
    pub fn result(&self, alg: Algorithm) -> &AlgResult {
        self.results
            .iter()
            .find(|r| r.algorithm == alg)
            .expect("all algorithms present")
    }
}

impl Serialize for AlgResult {
    fn to_value(&self) -> Value {
        let (makespan, enrolled, work) = match &self.stats {
            Some(s) => (Some(s.makespan), s.enrolled(), Some(s.work())),
            None => (None, 0, None),
        };
        Value::object([
            ("algorithm", self.algorithm.name().to_value()),
            ("makespan", makespan.to_value()),
            ("enrolled", enrolled.to_value()),
            ("work", work.to_value()),
            ("metrics", self.metrics.to_value()),
            ("attribution", self.attribution.to_value()),
            // Keep "error" last: Instance::to_value pops it to splice
            // the relative metrics in front.
            ("error", self.error.to_value()),
        ])
    }
}

impl Serialize for Instance {
    fn to_value(&self) -> Value {
        let results: Vec<Value> = self
            .results
            .iter()
            .map(|r| {
                // Relative metrics need the whole instance, so they are
                // attached here rather than in `AlgResult::to_value`.
                let Value::Object(mut fields) = r.to_value() else {
                    unreachable!("AlgResult serializes to an object")
                };
                let error = fields.pop().expect("AlgResult has fields");
                assert_eq!(error.0, "error", "AlgResult field order changed");
                fields.push((
                    "relative_cost".into(),
                    self.relative_cost(r.algorithm).to_value(),
                ));
                fields.push((
                    "relative_work".into(),
                    self.relative_work(r.algorithm).to_value(),
                ));
                fields.push(error);
                Value::Object(fields)
            })
            .collect();
        Value::object([
            ("platform", self.platform_name.to_value()),
            ("job", self.job.to_value()),
            ("results", Value::Array(results)),
        ])
    }
}

/// Renders the classic two-panel figure (relative cost, relative work) as
/// aligned text tables, one row per instance.
pub fn render_figure(
    title: &str,
    instances: &[Instance],
    label: impl Fn(&Instance) -> String,
) -> String {
    let algs = Algorithm::all();
    let mut out = String::new();
    for (panel, metric) in [("(a) relative cost", 0), ("(b) relative work", 1)] {
        out.push_str(&format!("{title} {panel}\n"));
        out.push_str(&format!("{:<22}", "instance"));
        for a in algs {
            out.push_str(&format!("{:>9}", a.name()));
        }
        out.push('\n');
        for inst in instances {
            out.push_str(&format!("{:<22}", label(inst)));
            for a in algs {
                let v = if metric == 0 {
                    inst.relative_cost(a)
                } else {
                    inst.relative_work(a)
                };
                if v.is_finite() {
                    out.push_str(&format!("{v:>9.3}"));
                } else {
                    out.push_str(&format!("{:>9}", "-"));
                }
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// CSV rows (one per instance × algorithm) for downstream plotting.
pub fn to_csv(instances: &[Instance]) -> String {
    let mut out = String::from(
        "platform,r,t,s,q,algorithm,makespan,enrolled,work,ccr,relative_cost,relative_work\n",
    );
    for inst in instances {
        for r in &inst.results {
            let (mk, en, wk, ccr) = match &r.stats {
                Some(s) => (s.makespan, s.enrolled(), s.work(), s.ccr()),
                None => (f64::NAN, 0, f64::NAN, f64::NAN),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.3},{},{:.3},{:.5},{:.4},{:.4}\n",
                inst.platform_name,
                inst.job.r,
                inst.job.t,
                inst.job.s,
                inst.job.q,
                r.algorithm.name(),
                mk,
                en,
                wk,
                ccr,
                inst.relative_cost(r.algorithm),
                inst.relative_work(r.algorithm),
            ));
        }
    }
    out
}

/// Machine-readable form of a set of instances, so future PRs can track
/// a perf/quality trajectory across runs (`BENCH_*.json`). Serialized
/// through the workspace serde ([`serde::json`]).
pub fn instances_to_json(experiment: &str, instances: &[Instance]) -> String {
    Value::object([
        ("experiment", experiment.to_value()),
        ("instances", instances.to_value()),
    ])
    .render_pretty()
}

/// Writes a `--json` result file, creating parent directories on demand
/// (shared by every binary accepting the flag).
///
/// # Panics
/// Panics when the file cannot be written — a results path the user
/// asked for must not fail silently after a long sweep.
pub fn write_json(path: &std::path::Path, contents: &str) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        }
    }
    std::fs::write(path, contents)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("(json written to {})", path.display());
}

/// Writes experiment output under `results/` (created on demand) and
/// echoes the path.
pub fn write_results(name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Runs the Figures 4–6 protocol: the five increasing matrix sizes on
/// one platform, fanned out over `threads` workers.
pub fn size_sweep(platform: &Platform, threads: usize) -> Vec<Instance> {
    let grid: Vec<(Platform, Job)> = Job::paper_sweep()
        .iter()
        .map(|job| (platform.clone(), *job))
        .collect();
    Instance::run_grid(&grid, threads)
}

/// The Figures 4–6 grid under the uniform flags: the paper's five
/// matrix sizes on one platform (`--smoke` keeps the two smallest —
/// sliced *before* anything is simulated).
pub fn size_grid(platform: &Platform, cli: &Cli) -> Vec<(Platform, Job)> {
    let jobs = Job::paper_sweep();
    let jobs = if cli.smoke { &jobs[..2] } else { &jobs[..] };
    jobs.iter().map(|j| (platform.clone(), *j)).collect()
}

/// The Figure-7 grid under the uniform flags: the fixed ratio-2/ratio-4
/// platforms plus the seeded random draws (`--smoke`: two draws and a
/// smaller B). Shared by `exp_fig7` and the `exp_fig9` recap so the two
/// can never desynchronize.
pub fn fig7_grid(cli: &Cli) -> Vec<(Platform, Job)> {
    let job = Job::paper(if cli.smoke { 16_000 } else { 80_000 });
    let mut platforms = vec![
        stargemm_platform::presets::fully_het(2.0),
        stargemm_platform::presets::fully_het(4.0),
    ];
    let random = stargemm_platform::random::figure7_random_platforms(2008);
    let keep = if cli.smoke { 2 } else { random.len() };
    platforms.extend(random.into_iter().take(keep));
    platforms.into_iter().map(|p| (p, job)).collect()
}

/// The Figure-8 grid under the uniform flags: the two Lyon
/// configurations (`--smoke`: smaller B). Shared by `exp_fig8` and the
/// `exp_fig9` recap.
pub fn fig8_grid(cli: &Cli) -> Vec<(Platform, Job)> {
    let job = Job::paper(if cli.smoke { 64_000 } else { 320_000 });
    vec![
        (stargemm_platform::presets::lyon(true), job),
        (stargemm_platform::presets::lyon(false), job),
    ]
}

/// The whole Figures 4–6 protocol behind the uniform CLI: run the size
/// sweep (`--smoke` keeps the two smallest sizes, `--threads` fans the
/// grid out), emit the two-panel figure, and honour `--json`.
pub fn emit_size_figure(id: &str, title: &str, platform: &Platform, cli: &Cli) {
    let grid = size_grid(platform, cli);
    let instances = Instance::run_grid(&grid, cli.threads);
    emit_figure(id, title, &instances, |i| {
        format!("s={} ({})", i.job.s, i.platform_name)
    });
    if let Some(path) = &cli.json {
        write_json(path, &instances_to_json(id, &instances));
    }
    if let Some(path) = &cli.trace_out {
        // The representative cell: Het on the largest size kept.
        let (p, j) = grid.last().expect("size grid is never empty");
        obs::emit_gemm_trace(path, p, j, Algorithm::Het);
    }
    if let Some(path) = &cli.attr_out {
        let (p, j) = grid.last().expect("size grid is never empty");
        obs::emit_gemm_attr(path, p, j, Algorithm::Het);
    }
}

/// Standard output for a figure: render both panels, print, and persist
/// table + CSV under `results/`.
pub fn emit_figure(
    id: &str,
    title: &str,
    instances: &[Instance],
    label: impl Fn(&Instance) -> String,
) {
    let fig = render_figure(title, instances, label);
    print!("{fig}");
    if let Ok(p) = write_results(&format!("{id}.txt"), &fig) {
        eprintln!("(written to {})", p.display());
    }
    if let Ok(p) = write_results(&format!("{id}.csv"), &to_csv(instances)) {
        eprintln!("(written to {})", p.display());
    }
}

/// Geometric mean helper for summary statistics.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0usize);
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stargemm_platform::WorkerSpec;

    fn tiny() -> (Platform, Job) {
        (
            Platform::new(
                "t",
                vec![WorkerSpec::new(0.5, 0.3, 40), WorkerSpec::new(1.0, 0.6, 20)],
            ),
            Job::new(6, 5, 8, 2),
        )
    }

    #[test]
    fn instance_runs_all_algorithms() {
        let (p, j) = tiny();
        let inst = Instance::run(&p, &j);
        assert_eq!(inst.results.len(), 7);
        assert!(inst.results.iter().all(|r| r.stats.is_some()));
        assert!(inst.best_makespan().is_finite());
        // Relative cost of the best algorithm is exactly 1.
        let min = Algorithm::all()
            .into_iter()
            .map(|a| inst.relative_cost(a))
            .fold(f64::INFINITY, f64::min);
        assert!((min - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_grid_matches_serial_runs() {
        let (p, j) = tiny();
        let grid = vec![(p.clone(), j), (p.clone(), Job::new(4, 4, 4, 2))];
        let par = Instance::run_grid(&grid, 4);
        for ((gp, gj), inst) in grid.iter().zip(&par) {
            let serial = Instance::run(gp, gj);
            assert_eq!(inst.platform_name, serial.platform_name);
            assert_eq!(inst.job, serial.job);
            for (a, b) in inst.results.iter().zip(&serial.results) {
                assert_eq!(a.stats, b.stats);
            }
        }
    }

    #[test]
    fn csv_has_a_row_per_algorithm() {
        let (p, j) = tiny();
        let inst = Instance::run(&p, &j);
        let csv = to_csv(std::slice::from_ref(&inst));
        assert_eq!(csv.lines().count(), 1 + 7);
        assert!(csv.contains("ORROML"));
    }

    #[test]
    fn figure_rendering_mentions_all_algorithms() {
        let (p, j) = tiny();
        let inst = Instance::run(&p, &j);
        let fig = render_figure("Figure X.", &[inst], |i| i.platform_name.clone());
        for a in Algorithm::all() {
            assert!(fig.contains(a.name()));
        }
        assert!(fig.contains("relative cost"));
        assert!(fig.contains("relative work"));
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty()).is_nan());
    }

    #[test]
    fn json_output_is_well_formed() {
        let (p, j) = tiny();
        let inst = Instance::run(&p, &j);
        let json = instances_to_json("figX", std::slice::from_ref(&inst));
        assert!(json.contains("\"experiment\": \"figX\""));
        assert!(json.contains("\"algorithm\": \"Het\""));
        assert!(json.contains("\"relative_cost\""));
        assert!(json.contains("\"r\": 6"));
        // Balanced braces/brackets, no trailing commas before closers.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n    ]"));
        assert!(!json.contains(",\n  ]"));
        // One result object per algorithm.
        assert_eq!(json.matches("\"algorithm\"").count(), 7);
    }

    #[test]
    fn failed_runs_serialize_with_error_and_null_makespan() {
        let (_, j) = tiny();
        let inst = Instance {
            platform_name: "broken".into(),
            job: j,
            results: vec![AlgResult {
                algorithm: Algorithm::Het,
                stats: None,
                metrics: None,
                attribution: None,
                error: Some("no feasible layout".into()),
            }],
        };
        let json = instances_to_json("f", &[inst]);
        assert!(json.contains("\"makespan\": null"));
        assert!(json.contains("\"error\": \"no feasible layout\""));
    }
}
