//! Experiment harness: shared utilities for regenerating every table and
//! figure of the paper (see `EXPERIMENTS.md` for the index).
//!
//! Each `src/bin/exp_*.rs` binary reproduces one artifact; this library
//! holds the common machinery — running the seven competitors on a
//! platform/job grid, computing the paper's *relative cost* and
//! *relative work* metrics, and rendering aligned text tables and CSV.

use stargemm_core::algorithms::{run_algorithm, Algorithm};
use stargemm_core::Job;
use stargemm_platform::Platform;
use stargemm_sim::RunStats;

/// Result of one algorithm on one instance.
#[derive(Clone, Debug)]
pub struct AlgResult {
    pub algorithm: Algorithm,
    pub stats: Option<RunStats>,
    /// Error string when the run failed (e.g. no feasible layout).
    pub error: Option<String>,
}

impl AlgResult {
    /// Makespan, or infinity for failed runs.
    pub fn makespan(&self) -> f64 {
        self.stats.as_ref().map_or(f64::INFINITY, |s| s.makespan)
    }

    /// The paper's work metric (makespan × enrolled processors).
    pub fn work(&self) -> f64 {
        self.stats.as_ref().map_or(f64::INFINITY, |s| s.work())
    }
}

/// One experiment instance: every algorithm on a platform and job.
#[derive(Clone, Debug)]
pub struct Instance {
    pub platform_name: String,
    pub job: Job,
    pub results: Vec<AlgResult>,
}

impl Instance {
    /// Runs all seven algorithms.
    pub fn run(platform: &Platform, job: &Job) -> Instance {
        let results = Algorithm::all()
            .into_iter()
            .map(|alg| match run_algorithm(platform, job, alg) {
                Ok(stats) => AlgResult {
                    algorithm: alg,
                    stats: Some(stats),
                    error: None,
                },
                Err(e) => AlgResult {
                    algorithm: alg,
                    stats: None,
                    error: Some(e.to_string()),
                },
            })
            .collect();
        Instance {
            platform_name: platform.name.clone(),
            job: *job,
            results,
        }
    }

    /// Best (smallest) makespan across algorithms.
    pub fn best_makespan(&self) -> f64 {
        self.results
            .iter()
            .map(AlgResult::makespan)
            .fold(f64::INFINITY, f64::min)
    }

    /// Best (smallest) work across algorithms.
    pub fn best_work(&self) -> f64 {
        self.results
            .iter()
            .map(AlgResult::work)
            .fold(f64::INFINITY, f64::min)
    }

    /// The paper's *relative cost* of one algorithm on this instance:
    /// its makespan divided by the best makespan achieved here.
    pub fn relative_cost(&self, alg: Algorithm) -> f64 {
        self.result(alg).makespan() / self.best_makespan()
    }

    /// The paper's *relative work*.
    pub fn relative_work(&self, alg: Algorithm) -> f64 {
        self.result(alg).work() / self.best_work()
    }

    /// Result entry for `alg`.
    pub fn result(&self, alg: Algorithm) -> &AlgResult {
        self.results
            .iter()
            .find(|r| r.algorithm == alg)
            .expect("all algorithms present")
    }
}

/// Renders the classic two-panel figure (relative cost, relative work) as
/// aligned text tables, one row per instance.
pub fn render_figure(
    title: &str,
    instances: &[Instance],
    label: impl Fn(&Instance) -> String,
) -> String {
    let algs = Algorithm::all();
    let mut out = String::new();
    for (panel, metric) in [("(a) relative cost", 0), ("(b) relative work", 1)] {
        out.push_str(&format!("{title} {panel}\n"));
        out.push_str(&format!("{:<22}", "instance"));
        for a in algs {
            out.push_str(&format!("{:>9}", a.name()));
        }
        out.push('\n');
        for inst in instances {
            out.push_str(&format!("{:<22}", label(inst)));
            for a in algs {
                let v = if metric == 0 {
                    inst.relative_cost(a)
                } else {
                    inst.relative_work(a)
                };
                if v.is_finite() {
                    out.push_str(&format!("{v:>9.3}"));
                } else {
                    out.push_str(&format!("{:>9}", "-"));
                }
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// CSV rows (one per instance × algorithm) for downstream plotting.
pub fn to_csv(instances: &[Instance]) -> String {
    let mut out = String::from(
        "platform,r,t,s,q,algorithm,makespan,enrolled,work,ccr,relative_cost,relative_work\n",
    );
    for inst in instances {
        for r in &inst.results {
            let (mk, en, wk, ccr) = match &r.stats {
                Some(s) => (s.makespan, s.enrolled(), s.work(), s.ccr()),
                None => (f64::NAN, 0, f64::NAN, f64::NAN),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.3},{},{:.3},{:.5},{:.4},{:.4}\n",
                inst.platform_name,
                inst.job.r,
                inst.job.t,
                inst.job.s,
                inst.job.q,
                r.algorithm.name(),
                mk,
                en,
                wk,
                ccr,
                inst.relative_cost(r.algorithm),
                inst.relative_work(r.algorithm),
            ));
        }
    }
    out
}

/// Minimal JSON string escaping (the only values we emit are ASCII
/// identifiers, but be correct anyway).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A float as a JSON value (`null` for NaN/∞, which JSON cannot carry).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Machine-readable form of a set of instances, so future PRs can track
/// a perf/quality trajectory across runs (`BENCH_*.json`).
pub fn instances_to_json(experiment: &str, instances: &[Instance]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"experiment\": \"{}\",\n  \"instances\": [\n",
        json_escape(experiment)
    ));
    for (ii, inst) in instances.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"platform\": \"{}\", \"job\": {{\"r\": {}, \"t\": {}, \"s\": {}, \"q\": {}}}, \"results\": [\n",
            json_escape(&inst.platform_name),
            inst.job.r,
            inst.job.t,
            inst.job.s,
            inst.job.q
        ));
        for (ri, r) in inst.results.iter().enumerate() {
            let (mk, en, wk) = match &r.stats {
                Some(s) => (json_f64(s.makespan), s.enrolled(), json_f64(s.work())),
                None => ("null".into(), 0, "null".into()),
            };
            out.push_str(&format!(
                "      {{\"algorithm\": \"{}\", \"makespan\": {}, \"enrolled\": {}, \"work\": {}, \"relative_cost\": {}, \"relative_work\": {}, \"error\": {}}}{}\n",
                r.algorithm.name(),
                mk,
                en,
                wk,
                json_f64(inst.relative_cost(r.algorithm)),
                json_f64(inst.relative_work(r.algorithm)),
                r.error
                    .as_ref()
                    .map_or("null".into(), |e| format!("\"{}\"", json_escape(e))),
                if ri + 1 < inst.results.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if ii + 1 < instances.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `--json <path>` flag from a raw argument list; returns the
/// path when present.
pub fn json_flag(args: &[String]) -> Option<std::path::PathBuf> {
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

/// Writes a `--json` result file, creating parent directories on demand
/// (shared by every binary accepting the flag).
///
/// # Panics
/// Panics when the file cannot be written — a results path the user
/// asked for must not fail silently after a long sweep.
pub fn write_json(path: &std::path::Path, contents: &str) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        }
    }
    std::fs::write(path, contents)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("(json written to {})", path.display());
}

/// Writes experiment output under `results/` (created on demand) and
/// echoes the path.
pub fn write_results(name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Runs the Figures 4–6 protocol: the five increasing matrix sizes on
/// one platform.
pub fn size_sweep(platform: &Platform) -> Vec<Instance> {
    Job::paper_sweep()
        .iter()
        .map(|job| Instance::run(platform, job))
        .collect()
}

/// Standard output for a figure: render both panels, print, and persist
/// table + CSV under `results/`.
pub fn emit_figure(
    id: &str,
    title: &str,
    instances: &[Instance],
    label: impl Fn(&Instance) -> String,
) {
    let fig = render_figure(title, instances, label);
    print!("{fig}");
    if let Ok(p) = write_results(&format!("{id}.txt"), &fig) {
        eprintln!("(written to {})", p.display());
    }
    if let Ok(p) = write_results(&format!("{id}.csv"), &to_csv(instances)) {
        eprintln!("(written to {})", p.display());
    }
}

/// Geometric mean helper for summary statistics.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0usize);
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stargemm_platform::WorkerSpec;

    fn tiny() -> (Platform, Job) {
        (
            Platform::new(
                "t",
                vec![WorkerSpec::new(0.5, 0.3, 40), WorkerSpec::new(1.0, 0.6, 20)],
            ),
            Job::new(6, 5, 8, 2),
        )
    }

    #[test]
    fn instance_runs_all_algorithms() {
        let (p, j) = tiny();
        let inst = Instance::run(&p, &j);
        assert_eq!(inst.results.len(), 7);
        assert!(inst.results.iter().all(|r| r.stats.is_some()));
        assert!(inst.best_makespan().is_finite());
        // Relative cost of the best algorithm is exactly 1.
        let min = Algorithm::all()
            .into_iter()
            .map(|a| inst.relative_cost(a))
            .fold(f64::INFINITY, f64::min);
        assert!((min - 1.0).abs() < 1e-12);
    }

    #[test]
    fn csv_has_a_row_per_algorithm() {
        let (p, j) = tiny();
        let inst = Instance::run(&p, &j);
        let csv = to_csv(std::slice::from_ref(&inst));
        assert_eq!(csv.lines().count(), 1 + 7);
        assert!(csv.contains("ORROML"));
    }

    #[test]
    fn figure_rendering_mentions_all_algorithms() {
        let (p, j) = tiny();
        let inst = Instance::run(&p, &j);
        let fig = render_figure("Figure X.", &[inst], |i| i.platform_name.clone());
        for a in Algorithm::all() {
            assert!(fig.contains(a.name()));
        }
        assert!(fig.contains("relative cost"));
        assert!(fig.contains("relative work"));
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty()).is_nan());
    }

    #[test]
    fn json_output_is_well_formed() {
        let (p, j) = tiny();
        let inst = Instance::run(&p, &j);
        let json = instances_to_json("figX", std::slice::from_ref(&inst));
        assert!(json.contains("\"experiment\": \"figX\""));
        assert!(json.contains("\"algorithm\": \"Het\""));
        // Balanced braces/brackets, no trailing commas before closers.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n    ]"));
        assert!(!json.contains(",\n  ]"));
        // One result object per algorithm.
        assert_eq!(json.matches("\"algorithm\"").count(), 7);
    }

    #[test]
    fn json_escaping_and_null_handling() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn json_flag_parsing() {
        let args: Vec<String> = ["exp", "--json", "out.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(json_flag(&args), Some(std::path::PathBuf::from("out.json")));
        assert_eq!(json_flag(&["exp".to_string()]), None);
        assert_eq!(json_flag(&["--json".to_string()]), None);
    }
}
