//! The pinned perf trajectory behind `BENCH_kernel.json`.
//!
//! One module owns the kernel workloads so the criterion bench
//! (`benches/kernel.rs`) and the CI artifact writer (`exp_perf`) can
//! never measure different code: **hold** (the classic DES benchmark —
//! N events stay pending, each delivery schedules a successor),
//! **cancel-half** (every other event is cancelled before delivery,
//! exercising the tombstone-skipping pop), and **drain** (schedule N,
//! pop all). Each sample records events/sec, the kernel's heap
//! high-water mark, and the cancellation count, so a future regression
//! in any of the three shows up as a step in the trajectory file.

use std::time::Instant;

use serde::json::Value;
use serde::Serialize;
use stargemm_sim::EventQueue;

use crate::{Cli, Instance};

/// Deterministic pseudo-random delays (xorshift — no rand dependency in
/// the hot loop).
pub struct Delays(u64);

impl Delays {
    /// A generator seeded for one workload.
    pub fn new(seed: u64) -> Delays {
        Delays(seed)
    }

    /// Next delay in `(1e-3, 1.001)` model seconds.
    pub fn next_delay(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 % 1_000) as f64 / 1_000.0 + 1e-3
    }
}

/// Final queue counters of one kernel workload run.
#[derive(Clone, Copy, Debug)]
pub struct KernelCounters {
    /// Events delivered.
    pub delivered: u64,
    /// Events cancelled before delivery.
    pub cancelled: u64,
    /// Peak heap size (pending events plus cancellation tombstones).
    pub heap_high_water: usize,
}

fn counters<T>(q: &EventQueue<T>) -> KernelCounters {
    KernelCounters {
        delivered: q.delivered(),
        cancelled: q.cancelled(),
        heap_high_water: q.heap_high_water(),
    }
}

/// The hold model: keep `pending` events in flight until `events` have
/// been delivered.
pub fn hold(pending: usize, events: u64) -> KernelCounters {
    let mut q = EventQueue::new();
    let mut delays = Delays::new(0x9e37_79b9_7f4a_7c15);
    for i in 0..pending {
        q.schedule(delays.next_delay(), i % 8, i as u64);
    }
    while q.delivered() < events {
        let ev = q.pop().unwrap().expect("hold model never drains");
        q.schedule(ev.time + delays.next_delay(), ev.component, ev.payload);
    }
    counters(&q)
}

/// The cancel-half model: like hold, but one pending event is cancelled
/// and rescheduled per delivery.
pub fn cancel_half(pending: usize, events: u64) -> KernelCounters {
    let mut q = EventQueue::new();
    let mut delays = Delays::new(0x2545_f491_4f6c_dd1d);
    let mut cancellable = Vec::with_capacity(pending / 2);
    for i in 0..pending {
        let id = q.schedule(delays.next_delay(), i % 8, i as u64);
        if i % 2 == 0 {
            cancellable.push(id);
        }
    }
    while q.delivered() < events {
        if let Some(id) = cancellable.pop() {
            if let Some(payload) = q.cancel(id) {
                q.schedule(q.now() + delays.next_delay(), 0, payload);
            }
        }
        let ev = q.pop().unwrap().expect("never drains");
        cancellable.push(q.schedule(ev.time + delays.next_delay(), ev.component, ev.payload));
    }
    counters(&q)
}

/// The drain model: schedule `events`, then pop everything.
pub fn drain(events: u64) -> KernelCounters {
    let mut q = EventQueue::new();
    let mut delays = Delays::new(0xda94_2042_e4dd_58b5);
    for i in 0..events {
        q.schedule(delays.next_delay() * 1e3, (i % 8) as usize, i);
    }
    while let Some(ev) = q.pop().unwrap() {
        std::hint::black_box(ev.payload);
    }
    counters(&q)
}

/// One row of the kernel trajectory.
#[derive(Clone, Debug, Serialize)]
pub struct KernelSample {
    /// Workload name (`hold`, `cancel_half`, `drain`).
    pub workload: String,
    /// Events delivered by the run.
    pub events: u64,
    /// Delivered events per wall-clock second.
    pub events_per_sec: f64,
    /// Kernel heap high-water mark.
    pub heap_high_water: u64,
    /// Events cancelled before delivery.
    pub cancelled: u64,
    /// Wall-clock seconds for the run.
    pub wall_secs: f64,
}

/// One row of the sweep timing trajectory.
#[derive(Clone, Debug, Serialize)]
pub struct CellSample {
    /// Cell label (`platform/s=…`).
    pub cell: String,
    /// Wall-clock seconds to run all seven algorithms on the cell.
    pub wall_secs: f64,
}

/// Runs one workload under the wall clock.
pub fn sample(workload: &str, run: impl FnOnce() -> KernelCounters) -> KernelSample {
    let t0 = Instant::now();
    let c = run();
    let wall_secs = t0.elapsed().as_secs_f64();
    KernelSample {
        workload: workload.to_string(),
        events: c.delivered,
        events_per_sec: if wall_secs > 0.0 {
            c.delivered as f64 / wall_secs
        } else {
            0.0
        },
        heap_high_water: c.heap_high_water as u64,
        cancelled: c.cancelled,
        wall_secs,
    }
}

/// The three headline kernel samples at `events` deliveries each.
pub fn kernel_trajectory(pending: usize, events: u64) -> Vec<KernelSample> {
    vec![
        sample("hold", || hold(pending, events)),
        sample("cancel_half", || cancel_half(pending, events)),
        sample("drain", || drain(events)),
    ]
}

/// Per-cell wall time of the standard size sweep (run serially so the
/// numbers mean something).
pub fn sweep_cell_times(cli: &Cli) -> Vec<CellSample> {
    let platform = stargemm_platform::presets::fully_het(2.0);
    crate::size_grid(&platform, cli)
        .iter()
        .map(|(p, j)| {
            let t0 = Instant::now();
            std::hint::black_box(Instance::run(p, j));
            CellSample {
                cell: format!("{}/s={}", p.name, j.s),
                wall_secs: t0.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

/// Gates the measured kernel trajectory against a committed baseline
/// (`ci/BENCH_kernel_baseline.json`): every workload must deliver at
/// least 80 % of its committed events/sec — symmetric with
/// [`crate::netperf::check_net_baseline`]. Returns the gate report on
/// success and the first violation (or schema problem) on failure.
pub fn check_kernel_baseline(
    baseline_json: &str,
    samples: &[KernelSample],
) -> Result<String, String> {
    const SCHEMA: &str =
        "{\"hold\": <events/sec>, \"cancel_half\": <events/sec>, \"drain\": <events/sec>}";
    // Validate the whole baseline schema up front so a malformed file
    // is reported as such even when the measured samples are short.
    let mut gates = Vec::new();
    for workload in ["hold", "cancel_half", "drain"] {
        let base = crate::netperf::scan_json_number(baseline_json, workload)
            .ok_or_else(|| format!("baseline has no \"{workload}\" field (expected {SCHEMA})"))?;
        gates.push((workload, base));
    }
    let mut lines = Vec::new();
    for (workload, base) in gates {
        let sample = samples
            .iter()
            .find(|s| s.workload == workload)
            .ok_or_else(|| format!("no {workload} sample to gate against"))?;
        let floor = 0.8 * base;
        if sample.events_per_sec < floor {
            return Err(format!(
                "kernel perf regression: {workload} delivers {:.0} events/sec, \
                 below 80% of the committed baseline {base:.0} (floor {floor:.0})",
                sample.events_per_sec
            ));
        }
        lines.push(format!(
            "kernel baseline gate ok: {workload} {:.0} events/sec >= floor {floor:.0}",
            sample.events_per_sec
        ));
    }
    Ok(lines.join("\n"))
}

/// Renders the `BENCH_kernel.json` artifact.
pub fn perf_report_json(kernel: &[KernelSample], cells: &[CellSample]) -> String {
    Value::object([
        ("experiment", "perf".to_value()),
        ("kernel", kernel.to_value()),
        ("sweep_cells", cells.to_value()),
    ])
    .render_pretty()
}

/// Aligned text table over the kernel samples.
pub fn render_kernel_table(samples: &[KernelSample]) -> String {
    let mut out = format!(
        "{:<14}{:>10}{:>16}{:>12}{:>12}{:>10}\n",
        "workload", "events", "events/sec", "heap hw", "cancelled", "wall s"
    );
    for s in samples {
        out.push_str(&format!(
            "{:<14}{:>10}{:>16.0}{:>12}{:>12}{:>10.3}\n",
            s.workload, s.events, s.events_per_sec, s.heap_high_water, s.cancelled, s.wall_secs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_deliver_what_they_promise() {
        let h = hold(64, 1_000);
        assert!(h.delivered >= 1_000);
        assert_eq!(h.cancelled, 0);
        assert!(h.heap_high_water >= 64);

        let c = cancel_half(64, 1_000);
        assert!(c.delivered >= 1_000);
        assert!(c.cancelled > 0, "cancel-half must actually cancel");

        let d = drain(1_000);
        assert_eq!(d.delivered, 1_000);
        assert_eq!(d.heap_high_water, 1_000);
    }

    #[test]
    fn trajectory_json_carries_all_samples() {
        let kernel = kernel_trajectory(64, 500);
        let cells = vec![CellSample {
            cell: "t/s=8".into(),
            wall_secs: 0.1,
        }];
        let json = perf_report_json(&kernel, &cells);
        assert!(json.contains("\"hold\""));
        assert!(json.contains("\"cancel_half\""));
        assert!(json.contains("\"drain\""));
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"heap_high_water\""));
        assert!(json.contains("\"sweep_cells\""));
        assert!(json.contains("t/s=8"));
    }

    #[test]
    fn kernel_baseline_gate_passes_floor_and_fails_regression() {
        let samples: Vec<KernelSample> = ["hold", "cancel_half", "drain"]
            .iter()
            .map(|w| KernelSample {
                workload: w.to_string(),
                events: 1_000,
                events_per_sec: 1_000.0,
                heap_high_water: 64,
                cancelled: 0,
                wall_secs: 1.0,
            })
            .collect();
        // At the committed level and 20 % below: ok. Below the floor: err.
        let base = r#"{"hold": 1000.0, "cancel_half": 1000.0, "drain": 1000.0}"#;
        assert!(check_kernel_baseline(base, &samples).is_ok());
        let hot = r#"{"hold": 1200.0, "cancel_half": 1200.0, "drain": 1200.0}"#;
        assert!(check_kernel_baseline(hot, &samples).is_ok());
        let far = r#"{"hold": 1000.0, "cancel_half": 2000.0, "drain": 1000.0}"#;
        let err = check_kernel_baseline(far, &samples).unwrap_err();
        assert!(err.contains("cancel_half"), "{err}");
        assert!(err.contains("80%"), "{err}");
    }

    #[test]
    fn kernel_baseline_gate_names_the_expected_schema() {
        let err = check_kernel_baseline(r#"{"hold": 1.0}"#, &[]).unwrap_err();
        assert!(err.contains("cancel_half"), "{err}");
        assert!(err.contains("expected"), "{err}");
        assert!(err.contains("drain"), "{err}");
    }

    #[test]
    fn kernel_table_lists_every_workload() {
        let table = render_kernel_table(&kernel_trajectory(64, 200));
        assert!(table.contains("hold"));
        assert!(table.contains("cancel_half"));
        assert!(table.contains("drain"));
    }
}
