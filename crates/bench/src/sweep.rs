//! The parallel scenario-sweep runner.
//!
//! Paper figures are *grids* — platforms × jobs × algorithms, or
//! scenarios × policies — and every cell is an independent simulation:
//! `Simulator` and `DynPlatform` are `Send + Clone`, so a whole sweep is
//! embarrassingly parallel. [`SweepSpec::run`] fans a scenario grid out
//! over a small thread pool and reassembles the results **in grid
//! order**, so the output (tables, CSV, aggregated JSON) is byte-for-byte
//! identical whatever `--threads` says — parallelism changes wall-clock
//! time, never results. `tests/determinism.rs` holds the property test.
//!
//! ```no_run
//! use stargemm_bench::sweep::SweepSpec;
//!
//! let squares = SweepSpec::new("squares", 4).run(&[1u64, 2, 3], |&n| n * n);
//! assert_eq!(squares.rows, vec![1, 4, 9]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

use serde::json::Value;
use serde::Serialize;

/// Describes one sweep: a label for reports and the fan-out width.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Experiment label carried into the aggregated JSON.
    pub name: String,
    /// Worker threads (1 = serial on the calling thread).
    pub threads: usize,
}

impl SweepSpec {
    /// A sweep named `name` running on `threads` workers.
    pub fn new(name: impl Into<String>, threads: usize) -> Self {
        SweepSpec {
            name: name.into(),
            threads: threads.max(1),
        }
    }

    /// Runs `f` over every scenario of the grid on the pool and returns
    /// the per-scenario results in grid order.
    pub fn run<S, R, F>(&self, grid: &[S], f: F) -> SweepOutcome<R>
    where
        S: Sync,
        R: Send,
        F: Fn(&S) -> R + Sync,
    {
        let start = std::time::Instant::now();
        let rows = parallel_map(self.threads, grid, |_, s| f(s));
        SweepOutcome {
            name: self.name.clone(),
            threads: self.threads.min(grid.len().max(1)),
            wall_secs: start.elapsed().as_secs_f64(),
            rows,
        }
    }
}

/// The results of one sweep, in grid order.
#[derive(Clone, Debug)]
pub struct SweepOutcome<R> {
    /// The sweep's label.
    pub name: String,
    /// Threads actually used (capped at the grid size).
    pub threads: usize,
    /// Wall-clock seconds the fan-out took (reporting only — not part
    /// of the aggregated JSON, which must not depend on `--threads`).
    pub wall_secs: f64,
    /// One result per scenario, in grid order.
    pub rows: Vec<R>,
}

impl<R: Serialize> SweepOutcome<R> {
    /// Aggregated JSON: `{"experiment": name, "rows": [...]}`.
    ///
    /// Deliberately excludes `threads` and `wall_secs` so the artifact
    /// is identical across fan-out widths.
    pub fn to_json(&self) -> String {
        Value::object([
            ("experiment", Value::String(self.name.clone())),
            ("rows", self.rows.to_value()),
        ])
        .render_pretty()
    }
}

impl<R> SweepOutcome<R> {
    /// One-line human summary for stderr.
    pub fn summary(&self) -> String {
        format!(
            "sweep {:?}: {} scenario(s) on {} thread(s) in {:.2}s",
            self.name,
            self.rows.len(),
            self.threads,
            self.wall_secs
        )
    }
}

/// Applies `f` to every item on a pool of `threads` workers and returns
/// the results in item order (`f` also receives the item index).
///
/// Work is distributed by an atomic cursor, so threads pick up the next
/// unstarted item as they finish — uneven per-item costs balance out.
/// With `threads <= 1` (or one item) everything runs on the calling
/// thread with no pool at all.
///
/// # Panics
/// Propagates a panic from any worker thread.
pub fn parallel_map<S, R, F>(threads: usize, items: &[S], f: F) -> Vec<R>
where
    S: Sync,
    R: Send,
    F: Fn(usize, &S) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, s)| f(i, s)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("sweep worker panicked"));
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_grid_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 7] {
            let out = parallel_map(threads, &items, |i, &n| {
                assert_eq!(i as u64, n);
                n * n
            });
            let expect: Vec<u64> = items.iter().map(|n| n * n).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn aggregated_json_is_thread_count_independent() {
        let items = [1.5f64, 2.5, f64::NAN];
        let json: Vec<String> = [1usize, 3]
            .iter()
            .map(|&t| {
                SweepSpec::new("demo", t)
                    .run(&items, |&x| x * 2.0)
                    .to_json()
            })
            .collect();
        assert_eq!(json[0], json[1]);
        assert!(json[0].contains("\"experiment\": \"demo\""));
        assert!(json[0].contains("null"), "NaN renders as null: {}", json[0]);
    }

    #[test]
    fn empty_grid_is_fine() {
        let out = SweepSpec::new("empty", 8).run(&[] as &[u32], |&x| x);
        assert!(out.rows.is_empty());
        assert_eq!(out.to_json().matches('[').count(), 1);
    }

    #[test]
    fn thread_cap_never_exceeds_grid() {
        let out = SweepSpec::new("cap", 64).run(&[1, 2], |&x: &i32| x);
        assert!(out.threads <= 2);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked")]
    fn worker_panics_propagate() {
        parallel_map(2, &[1, 2, 3, 4], |_, &n: &i32| {
            assert!(n < 3, "boom");
            n
        });
    }
}
