//! Observability plumbing shared by the `exp_*` binaries: recording a
//! representative run under a [`RunRecorder`], exporting Perfetto
//! traces for `--trace-out`, and deriving the [`RunMetrics`] bound-gap
//! block embedded in `--json` artifacts.
//!
//! Trace export deliberately *re-runs* one cell serially under the
//! recorder instead of recording the whole sweep: the artifact is then
//! independent of `--threads`, and the recorder-off sweep results stay
//! byte-identical to a sweep that never asked for a trace (the on/off
//! invariant `tests/obs_props.rs` pins).

use std::path::Path;
use std::rc::Rc;

use stargemm_core::algorithms::{run_algorithm_observed, Algorithm};
use stargemm_core::steady::lp_throughput;
use stargemm_core::Job;
use stargemm_obs::{perfetto_trace, Attribution, MetricsRegistry, ObsEvent, RunMetrics};
use stargemm_platform::Platform;
use stargemm_sim::{ObsSink, RunRecorder, RunStats, SimError};

use crate::write_json;

/// Runs `run` with a fresh recorder attached and returns its result
/// alongside the captured event log and metrics registry. `run`
/// receives the [`ObsSink`] to thread into whichever engine it drives.
pub fn record_with<T>(run: impl FnOnce(ObsSink) -> T) -> (T, Vec<ObsEvent>, MetricsRegistry) {
    let rec = RunRecorder::shared();
    let out = run(ObsSink::to(rec.clone()));
    let Ok(rec) = Rc::try_unwrap(rec) else {
        unreachable!("recorder has one owner after the run")
    };
    let (events, metrics) = rec.into_inner().into_parts();
    (out, events, metrics)
}

/// Runs `alg` on `platform`/`job` with a recorder attached and returns
/// the stats alongside the captured event log and derived metrics.
pub fn record_algorithm(
    platform: &Platform,
    job: &Job,
    alg: Algorithm,
) -> Result<(RunStats, Vec<ObsEvent>, MetricsRegistry), SimError> {
    let (stats, events, metrics) =
        record_with(|obs| run_algorithm_observed(platform, job, alg, obs));
    Ok((stats?, events, metrics))
}

/// Writes `events` as a Perfetto/Chrome `trace_event` JSON file
/// (open it at <https://ui.perfetto.dev>).
pub fn write_perfetto(path: &Path, events: &[ObsEvent]) {
    write_json(path, &perfetto_trace(events).render_pretty());
}

/// Honours `--trace-out` for a binary whose representative cell is a
/// plain single-GEMM run: records `alg` on the cell serially and writes
/// the Perfetto export. A failing cell reports instead of panicking —
/// the experiment's own tables already show the error.
pub fn emit_gemm_trace(path: &Path, platform: &Platform, job: &Job, alg: Algorithm) {
    match record_algorithm(platform, job, alg) {
        Ok((_, events, _)) => write_perfetto(path, &events),
        Err(e) => eprintln!(
            "(no trace: {} on {} failed: {e})",
            alg.name(),
            platform.name
        ),
    }
}

/// Honours `--trace-out` for binaries whose own cells are not engine
/// runs (the LP table, the analytic bounds sweep): traces Het on the
/// ratio-2 preset so the flag always yields a real schedule to look at.
pub fn emit_default_trace(path: &Path) {
    let platform = stargemm_platform::presets::fully_het(2.0);
    let job = Job::paper(16_000);
    emit_gemm_trace(path, &platform, &job, Algorithm::Het);
}

/// Writes the folded flamegraph stacks of `events`' makespan
/// attribution (one `category;frame;... <µs>` line per stack; feed to
/// `flamegraph.pl` or inferno).
pub fn write_folded_stacks(path: &Path, events: &[ObsEvent], makespan: f64) {
    let attr = Attribution::from_events(events, makespan);
    if let Err(e) = std::fs::write(path, attr.folded_stacks()) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("folded attribution stacks written to {}", path.display());
}

/// Honours `--attr-out` for a binary whose representative cell is a
/// plain single-GEMM run: records `alg` serially and writes the folded
/// attribution stacks (mirrors [`emit_gemm_trace`]).
pub fn emit_gemm_attr(path: &Path, platform: &Platform, job: &Job, alg: Algorithm) {
    match record_algorithm(platform, job, alg) {
        Ok((stats, events, _)) => write_folded_stacks(path, &events, stats.makespan),
        Err(e) => eprintln!(
            "(no attribution: {} on {} failed: {e})",
            alg.name(),
            platform.name
        ),
    }
}

/// Honours `--attr-out` for binaries whose own cells are not engine
/// runs: attributes Het on the ratio-2 preset (mirrors
/// [`emit_default_trace`]).
pub fn emit_default_attr(path: &Path) {
    let platform = stargemm_platform::presets::fully_het(2.0);
    let job = Job::paper(16_000);
    emit_gemm_attr(path, &platform, &job, Algorithm::Het);
}

/// The [`RunMetrics`] bound-gap block of a single-GEMM run: port
/// occupancy vs its peak-lane ceiling, achieved updates/second vs the
/// Table 1 steady-state LP `ρ*`, and per-worker busy fractions vs the
/// bandwidth-centric plan shares.
pub fn gemm_run_metrics(platform: &Platform, job: &Job, stats: &RunStats) -> RunMetrics {
    let achieved = if stats.makespan > 0.0 {
        stats.total_updates as f64 / stats.makespan
    } else {
        0.0
    };
    let busy: Vec<f64> = stats
        .per_worker
        .iter()
        .map(|w| {
            if stats.makespan > 0.0 {
                w.busy_time / stats.makespan
            } else {
                0.0
            }
        })
        .collect();
    let steady = stargemm_core::steady::bandwidth_centric(platform, job.r);
    let plan: Vec<f64> = steady
        .rates
        .iter()
        .zip(platform.workers())
        .map(|(x, s)| x * s.w)
        .collect();
    RunMetrics::derive(
        stats.makespan,
        stats.port_busy,
        stats.port.peak_lanes as usize,
        achieved,
        lp_throughput(platform, job.r),
        &busy,
        &plan,
    )
}

/// Aligned text table of the port-level breakdown across instances —
/// the satellite view `exp_fig7` prints under the classic two panels.
pub fn render_port_breakdown(title: &str, rows: &[(String, &RunStats)]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<22}{:>10}{:>8}{:>10}{:>10}{:>12}\n",
        "instance", "busy", "lanes", "idle gaps", "idle s", "longest stall"
    ));
    for (label, stats) in rows {
        out.push_str(&format!(
            "{:<22}{:>10.2}{:>8}{:>10}{:>10.2}{:>12.2}\n",
            label,
            stats.port_busy,
            stats.port.peak_lanes,
            stats.port.idle_gaps,
            stats.port.idle_time,
            stats.port.longest_stall,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stargemm_platform::WorkerSpec;

    fn tiny() -> (Platform, Job) {
        (
            Platform::new(
                "obs-t",
                vec![WorkerSpec::new(0.5, 0.3, 40), WorkerSpec::new(1.0, 0.6, 20)],
            ),
            Job::new(6, 5, 8, 2),
        )
    }

    #[test]
    fn recording_does_not_change_the_stats() {
        let (p, j) = tiny();
        let plain = stargemm_core::run_algorithm(&p, &j, Algorithm::Oddoml).unwrap();
        let (observed, events, metrics) = record_algorithm(&p, &j, Algorithm::Oddoml).unwrap();
        assert_eq!(plain, observed);
        assert!(!events.is_empty());
        assert!(metrics.counter("events.port_acquire") > 0);
    }

    #[test]
    fn gemm_metrics_respect_the_port_bound() {
        let (p, j) = tiny();
        let stats = stargemm_core::run_algorithm(&p, &j, Algorithm::Het).unwrap();
        let m = gemm_run_metrics(&p, &j, &stats);
        assert!(m.port.gap > 0.0 && m.port.gap <= 1.0, "{:?}", m.port);
        assert!(m.throughput.bound > 0.0);
        assert_eq!(m.workers.len(), p.len());
    }

    #[test]
    fn attr_diff_blames_halved_port_bandwidth_on_the_port() {
        // Same job, same workers — but every per-block comm cost is
        // doubled, i.e. the shared port runs at half bandwidth. The
        // attribution diff must pin the slowdown on the port category,
        // not spread it around.
        let (fast, job) = tiny();
        let slow = Platform::new(
            "obs-t-slow",
            fast.workers()
                .iter()
                .map(|s| WorkerSpec::new(2.0 * s.c, s.w, s.m))
                .collect(),
        );
        let (st_a, ev_a, _) = record_algorithm(&fast, &job, Algorithm::Het).unwrap();
        let (st_b, ev_b, _) = record_algorithm(&slow, &job, Algorithm::Het).unwrap();
        let a = Attribution::from_events(&ev_a, st_a.makespan);
        let b = Attribution::from_events(&ev_b, st_b.makespan);
        assert!(
            b.makespan > a.makespan,
            "halving port bandwidth must slow the run"
        );
        let d = a.diff(&b);
        // d[0] is port_busy (CATEGORY_NAMES order); it must be the
        // dominant mover and carry most of the makespan growth.
        assert_eq!(stargemm_obs::CATEGORY_NAMES[0], "port_busy");
        let max = d.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        assert_eq!(d[0], max, "port_busy must be the largest delta: {d:?}");
        assert!(
            d[0] >= 0.5 * (b.makespan - a.makespan),
            "port_busy delta {} vs makespan delta {}",
            d[0],
            b.makespan - a.makespan
        );
    }

    #[test]
    fn port_breakdown_renders_every_row() {
        let (p, j) = tiny();
        let stats = stargemm_core::run_algorithm(&p, &j, Algorithm::Het).unwrap();
        let table = render_port_breakdown("ports", &[("cell-a".to_string(), &stats)]);
        assert!(table.contains("cell-a"));
        assert!(table.contains("longest stall"));
    }
}
