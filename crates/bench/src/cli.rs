//! Uniform command-line handling for the `exp_*` experiment binaries.
//!
//! Every experiment accepts the same three flags instead of growing its
//! own ad-hoc parser:
//!
//! * `--smoke` — shrink the instance to CI size (binaries without a
//!   smaller instance simply ignore it);
//! * `--json <path>` — also write machine-readable results to `path`;
//! * `--threads <n>` — worker threads for the sweep runner
//!   (default: all available cores; `--threads 1` forces a serial run);
//! * `--trace-out <path>` — write a Perfetto/Chrome `trace_event` JSON
//!   of a representative cell to `path` (re-run serially under a
//!   recorder, so the artifact is thread-count independent);
//! * `--attr-out <path>` — write the folded flamegraph stacks of the
//!   same representative cell's makespan attribution to `path`
//!   (mirrors `--trace-out`: serial re-run, thread-count independent);
//! * `--net-baseline <path>` — committed net-engine throughput baseline
//!   to gate against (only `exp_perf` honours it; the run fails if the
//!   reactor's events/sec drop more than 20 % below the baseline);
//! * `--kernel-baseline <path>` — committed event-kernel throughput
//!   baseline (only `exp_perf` honours it; same 20 % floor per
//!   workload).
//!
//! ```sh
//! cargo run --release -p stargemm-bench --bin exp_dynamic -- --smoke --threads 2
//! ```

use std::path::PathBuf;

/// Parsed common flags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cli {
    /// Run the CI-sized instance.
    pub smoke: bool,
    /// Where to write machine-readable results, when requested.
    pub json: Option<PathBuf>,
    /// Worker threads for sweep fan-out (≥ 1).
    pub threads: usize,
    /// Where to write a Perfetto trace of a representative run.
    pub trace_out: Option<PathBuf>,
    /// Where to write folded attribution stacks of a representative run.
    pub attr_out: Option<PathBuf>,
    /// Committed net-engine baseline JSON to gate throughput against.
    pub net_baseline: Option<PathBuf>,
    /// Committed event-kernel baseline JSON to gate throughput against.
    pub kernel_baseline: Option<PathBuf>,
}

impl Cli {
    /// Parses the process arguments; prints the error and exits with
    /// status 2 on a malformed or unknown flag.
    pub fn parse() -> Cli {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Cli::from_args(&args) {
            Ok(cli) => cli,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--smoke] [--json <path>] [--threads <n>] \
                     [--trace-out <path>] [--attr-out <path>] \
                     [--net-baseline <path>] [--kernel-baseline <path>]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses a raw argument list (no program name).
    pub fn from_args(args: &[String]) -> Result<Cli, String> {
        // A flag's value must not itself look like a flag: `--json
        // --threads` is a forgotten path, not a file named "--threads".
        fn value<'a>(
            it: &mut std::slice::Iter<'a, String>,
            flag: &str,
            what: &str,
        ) -> Result<&'a str, String> {
            match it.clone().next() {
                Some(v) if !v.starts_with("--") => {
                    it.next();
                    Ok(v)
                }
                _ => Err(format!("{flag} needs a {what} argument")),
            }
        }
        let mut cli = Cli {
            smoke: false,
            json: None,
            threads: default_threads(),
            trace_out: None,
            attr_out: None,
            net_baseline: None,
            kernel_baseline: None,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--smoke" => cli.smoke = true,
                "--json" => {
                    cli.json = Some(PathBuf::from(value(&mut it, "--json", "path")?));
                }
                "--trace-out" => {
                    cli.trace_out = Some(PathBuf::from(value(&mut it, "--trace-out", "path")?));
                }
                "--attr-out" => {
                    cli.attr_out = Some(PathBuf::from(value(&mut it, "--attr-out", "path")?));
                }
                "--net-baseline" => {
                    cli.net_baseline =
                        Some(PathBuf::from(value(&mut it, "--net-baseline", "path")?));
                }
                "--kernel-baseline" => {
                    cli.kernel_baseline =
                        Some(PathBuf::from(value(&mut it, "--kernel-baseline", "path")?));
                }
                "--threads" => {
                    let n = value(&mut it, "--threads", "count")?;
                    let n: usize = n
                        .parse()
                        .map_err(|_| format!("--threads needs a number, got {n:?}"))?;
                    if n == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    cli.threads = n;
                }
                other => {
                    return Err(format!(
                        "unknown argument {other:?} \
                         (valid flags: --smoke, --json <path>, --threads <n>, \
                         --trace-out <path>, --attr-out <path>, \
                         --net-baseline <path>, --kernel-baseline <path>)"
                    ))
                }
            }
        }
        Ok(cli)
    }
}

/// The default sweep width: every available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_full_size_serial_free() {
        let cli = Cli::from_args(&[]).unwrap();
        assert!(!cli.smoke);
        assert_eq!(cli.json, None);
        assert_eq!(cli.trace_out, None);
        assert_eq!(cli.attr_out, None);
        assert_eq!(cli.net_baseline, None);
        assert_eq!(cli.kernel_baseline, None);
        assert!(cli.threads >= 1);
    }

    #[test]
    fn all_flags_parse_in_any_order() {
        let cli = Cli::from_args(&strs(&[
            "--threads",
            "3",
            "--smoke",
            "--trace-out",
            "t.json",
            "--attr-out",
            "a.folded",
            "--net-baseline",
            "b.json",
            "--kernel-baseline",
            "k.json",
            "--json",
            "o.json",
        ]))
        .unwrap();
        assert!(cli.smoke);
        assert_eq!(cli.json, Some(PathBuf::from("o.json")));
        assert_eq!(cli.trace_out, Some(PathBuf::from("t.json")));
        assert_eq!(cli.attr_out, Some(PathBuf::from("a.folded")));
        assert_eq!(cli.net_baseline, Some(PathBuf::from("b.json")));
        assert_eq!(cli.kernel_baseline, Some(PathBuf::from("k.json")));
        assert_eq!(cli.threads, 3);
    }

    #[test]
    fn malformed_flags_are_rejected() {
        assert!(Cli::from_args(&strs(&["--json"])).is_err());
        assert!(Cli::from_args(&strs(&["--threads"])).is_err());
        assert!(Cli::from_args(&strs(&["--threads", "zero"])).is_err());
        assert!(Cli::from_args(&strs(&["--threads", "0"])).is_err());
        assert!(Cli::from_args(&strs(&["--trace-out"])).is_err());
        assert!(Cli::from_args(&strs(&["--trace-out", "--smoke"])).is_err());
        assert!(Cli::from_args(&strs(&["--attr-out"])).is_err());
        assert!(Cli::from_args(&strs(&["--attr-out", "--smoke"])).is_err());
        assert!(Cli::from_args(&strs(&["--net-baseline"])).is_err());
        assert!(Cli::from_args(&strs(&["--net-baseline", "--smoke"])).is_err());
        assert!(Cli::from_args(&strs(&["--kernel-baseline"])).is_err());
        assert!(Cli::from_args(&strs(&["--kernel-baseline", "--smoke"])).is_err());
        assert!(Cli::from_args(&strs(&["--frobnicate"])).is_err());
    }

    #[test]
    fn a_flag_is_never_swallowed_as_a_value() {
        // Regression: `--json --smoke` used to accept "--smoke" as the
        // output path (and silently drop the smoke request).
        let err = Cli::from_args(&strs(&["--json", "--smoke"])).unwrap_err();
        assert!(err.contains("--json needs a path"), "{err}");
        let err = Cli::from_args(&strs(&["--threads", "--json", "x"])).unwrap_err();
        assert!(err.contains("--threads needs a count"), "{err}");
    }

    #[test]
    fn error_messages_name_the_offender_and_the_valid_flags() {
        let err = Cli::from_args(&strs(&["--frobnicate"])).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
        assert!(err.contains("--smoke"), "{err}");
        assert!(err.contains("--threads"), "{err}");
        assert!(err.contains("--attr-out"), "{err}");
        assert!(err.contains("--kernel-baseline"), "{err}");
        let err = Cli::from_args(&strs(&["--threads", "0"])).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = Cli::from_args(&strs(&["--threads", "three"])).unwrap_err();
        assert!(err.contains("needs a number"), "{err}");
    }

    #[test]
    fn negative_thread_counts_are_rejected() {
        // "-2" parses as no usize; the message points at the flag.
        let err = Cli::from_args(&strs(&["--threads", "-2"])).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
    }
}
