//! The net-engine perf trajectory behind `BENCH_net.json`.
//!
//! Same philosophy as [`crate::perf`]: one module owns the workloads so
//! the CI artifact writer (`exp_perf`) and any future bench measure the
//! same code. Three things are pinned here:
//!
//! * **engine throughput** — policy-visible events per wall second on a
//!   uniform star, threaded vs reactor at 256 workers and the reactor's
//!   scaling curve up to 2048 workers (a scale the thread-per-worker
//!   engine cannot reasonably reach: 256 workers already cost ~512 OS
//!   threads with the wire helpers);
//! * **heap high-water** — peak live bytes during each run, via the
//!   [`CountingAlloc`] the `exp_perf` binary installs as its global
//!   allocator;
//! * **netmodel steady state** — the lane re-share hot path
//!   (`maxmin_shares_into` through a warm [`ShareScratch`]) must not
//!   allocate at all once warm.
//!
//! The committed baseline (`ci/BENCH_net_baseline.json`) gates CI: the
//! reactor's 256-worker events/sec must stay within 20 % of it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::json::Value;
use serde::Serialize;
use stargemm_core::algorithms::{build_policy, Algorithm};
use stargemm_core::geometry::ChunkGeom;
use stargemm_core::stream::GeometryAccess;
use stargemm_core::Job;
use stargemm_linalg::BlockMatrix;
use stargemm_net::{NetEngine, NetOptions, NetRuntime};
use stargemm_netmodel::{maxmin_shares_into, ShareScratch, TransferLane};
use stargemm_platform::{Platform, WorkerSpec};
use stargemm_sim::{Action, ChunkId, MasterPolicy, SimCtx, SimEvent};

// Allocation counters live in statics (not in the allocator instance)
// so library code can read them regardless of which binary registered
// the [`CountingAlloc`]. In binaries that do not install it, every
// reading stays zero and the heap columns degrade gracefully.
static TOTAL_ALLOCATED: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static HIGH_WATER: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-backed global allocator that tracks cumulative
/// allocated bytes, live bytes, and the live-byte high-water mark.
///
/// Install it in a binary with
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;`.
pub struct CountingAlloc;

// A global allocator is an inherently `unsafe` trait; the impl only
// delegates to `System` and updates atomic counters, adding no new
// invariants of its own.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

fn on_alloc(size: usize) {
    TOTAL_ALLOCATED.fetch_add(size as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    HIGH_WATER.fetch_max(live, Ordering::Relaxed);
}

/// Cumulative bytes ever allocated (0 unless a binary installed the
/// [`CountingAlloc`]).
pub fn total_allocated() -> u64 {
    TOTAL_ALLOCATED.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live size, so the next
/// reading isolates one workload's peak.
pub fn reset_high_water() {
    HIGH_WATER.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak live bytes since the last [`reset_high_water`].
pub fn high_water() -> usize {
    HIGH_WATER.load(Ordering::Relaxed)
}

/// A transparent policy wrapper counting the engine conversation: how
/// many non-`Wait` actions the policy issued and how many events the
/// engine delivered back. Both engines speak the same protocol, so the
/// counts make threaded and reactor runs directly comparable.
pub struct CountingPolicy<P> {
    inner: P,
    /// Non-`Wait` actions issued (sends + retrieves + completions).
    pub actions: u64,
    /// Engine events delivered to the policy.
    pub events: u64,
}

impl<P> CountingPolicy<P> {
    /// Wraps a policy with zeroed counters.
    pub fn new(inner: P) -> Self {
        CountingPolicy {
            inner,
            actions: 0,
            events: 0,
        }
    }
}

impl<P: MasterPolicy> MasterPolicy for CountingPolicy<P> {
    fn next_action(&mut self, ctx: &SimCtx) -> Action {
        let a = self.inner.next_action(ctx);
        if !matches!(a, Action::Wait) {
            self.actions += 1;
        }
        a
    }

    fn on_event(&mut self, ev: &SimEvent, ctx: &SimCtx) {
        self.events += 1;
        self.inner.on_event(ev, ctx);
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

impl<P: GeometryAccess> GeometryAccess for CountingPolicy<P> {
    fn chunk_geom(&self, id: ChunkId) -> Option<ChunkGeom> {
        self.inner.chunk_geom(id)
    }

    fn job_dims(&self) -> Job {
        self.inner.job_dims()
    }
}

/// The worker-scaling scenario: a uniform star of `workers` identical
/// workers and a thin C (4 block-rows, one step) wide enough to give
/// every worker column strips to chew through. `q = 2` keeps the
/// payloads and the real GEMM negligible — the run measures the engine,
/// not the kernel.
pub fn net_scenario(workers: usize) -> (Platform, Job) {
    let spec = WorkerSpec::new(1e-5, 1e-6, 64);
    let platform = Platform::homogeneous(format!("net{workers}"), workers, spec);
    // ODDOML carves 4-column strips here, so 4·workers columns puts one
    // chunk on every worker of the star.
    let job = Job::new(4, 1, 4 * workers.max(2), 2);
    (platform, job)
}

/// One row of the net trajectory.
#[derive(Clone, Debug, Serialize)]
pub struct NetPerfSample {
    /// `threaded` or `reactor`.
    pub engine: String,
    /// Star width.
    pub workers: usize,
    /// Chunks processed by the run.
    pub chunks: u64,
    /// Engine events delivered to the policy.
    pub events: u64,
    /// Events per wall-clock second — the headline throughput.
    pub events_per_sec: f64,
    /// Wall-clock seconds for the run.
    pub wall_secs: f64,
    /// Peak live heap bytes during the run (0 without the counting
    /// allocator installed).
    pub heap_high_water: u64,
}

/// Runs the scaling scenario on one engine and samples it.
pub fn run_net_sample(engine: NetEngine, workers: usize) -> NetPerfSample {
    let (platform, job) = net_scenario(workers);
    let mut policy = CountingPolicy::new(build_policy(&platform, &job, Algorithm::Oddoml).unwrap());
    let mut rng = StdRng::seed_from_u64(0xBE7);
    let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
    let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
    let mut c = BlockMatrix::random(job.r, job.s, job.q, &mut rng);
    let rt = NetRuntime::new(platform).with_options(NetOptions {
        time_scale: 1e-7,
        idle_timeout: Duration::from_secs(120),
        engine,
        ..Default::default()
    });
    reset_high_water();
    let t0 = Instant::now();
    let stats = rt.run(&mut policy, &a, &b, &mut c).expect("net sample run");
    let wall_secs = t0.elapsed().as_secs_f64();
    NetPerfSample {
        engine: match engine {
            NetEngine::Reactor => "reactor".to_string(),
            NetEngine::Threaded => "threaded".to_string(),
        },
        workers,
        chunks: stats.chunks,
        events: policy.events,
        events_per_sec: if wall_secs > 0.0 {
            policy.events as f64 / wall_secs
        } else {
            0.0
        },
        wall_secs,
        heap_high_water: high_water() as u64,
    }
}

/// The `BENCH_net.json` sample set: threaded vs reactor head-to-head at
/// the comparison width, then the reactor alone up the scaling curve.
pub fn net_trajectory(head_to_head: usize, curve: &[usize]) -> Vec<NetPerfSample> {
    let mut samples = vec![
        run_net_sample(NetEngine::Threaded, head_to_head),
        run_net_sample(NetEngine::Reactor, head_to_head),
    ];
    for &w in curve {
        samples.push(run_net_sample(NetEngine::Reactor, w));
    }
    samples
}

/// Bytes allocated by the netmodel re-share hot path *after* warm-up:
/// `rounds` full share resolutions over `lanes` active lanes through
/// one warm [`ShareScratch`]. The scratch-arena contract says this is
/// zero; `exp_perf` asserts it.
pub fn netmodel_steady_state_bytes(lanes: usize, rounds: usize) -> u64 {
    let active: Vec<TransferLane> = (0..lanes)
        .map(|i| TransferLane {
            worker: i / 2,
            link_rate: 1.0 / (1.0 + i as f64),
        })
        .collect();
    let mut scratch = ShareScratch::new();
    // Warm-up: size every internal buffer to the working set.
    maxmin_shares_into(&active, 0.75, &mut scratch);
    let before = total_allocated();
    for r in 0..rounds {
        let backbone = 0.5 + 0.5 / (1 + r) as f64;
        maxmin_shares_into(&active, backbone, &mut scratch);
        std::hint::black_box(scratch.shares().len());
    }
    total_allocated() - before
}

/// Renders the `BENCH_net.json` artifact.
pub fn net_report_json(samples: &[NetPerfSample], netmodel_steady_bytes: u64) -> String {
    Value::object([
        ("experiment", "netperf".to_value()),
        (
            "netmodel_steady_state_bytes",
            netmodel_steady_bytes.to_value(),
        ),
        ("samples", samples.to_value()),
    ])
    .render_pretty()
}

/// Aligned text table over the net samples.
pub fn render_net_table(samples: &[NetPerfSample]) -> String {
    let mut out = format!(
        "{:<10}{:>9}{:>9}{:>9}{:>14}{:>10}{:>14}\n",
        "engine", "workers", "chunks", "events", "events/sec", "wall s", "heap hw"
    );
    for s in samples {
        out.push_str(&format!(
            "{:<10}{:>9}{:>9}{:>9}{:>14.0}{:>10.3}{:>14}\n",
            s.engine,
            s.workers,
            s.chunks,
            s.events,
            s.events_per_sec,
            s.wall_secs,
            s.heap_high_water
        ));
    }
    out
}

/// Scans a raw JSON string for `"key": <number>` — the committed
/// baseline is read with a dumb string scan on purpose (the vendored
/// serde shim has no general deserializer).
pub fn scan_json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The CI regression gate: the reactor sample at the baseline's worker
/// count must reach at least 80 % of the committed events/sec. Returns
/// a human-readable error when it does not (or when the baseline or the
/// matching sample is missing — a silently green gate is no gate).
pub fn check_net_baseline(
    baseline_json: &str,
    samples: &[NetPerfSample],
) -> Result<String, String> {
    const SCHEMA: &str = "{\"workers\": <n>, \"events_per_sec\": <events/sec>}";
    let workers = scan_json_number(baseline_json, "workers")
        .ok_or_else(|| format!("baseline has no \"workers\" field (expected {SCHEMA})"))?
        as usize;
    let base = scan_json_number(baseline_json, "events_per_sec")
        .ok_or_else(|| format!("baseline has no \"events_per_sec\" field (expected {SCHEMA})"))?;
    let sample = samples
        .iter()
        .find(|s| s.engine == "reactor" && s.workers == workers)
        .ok_or_else(|| format!("no reactor sample at {workers} workers to gate against"))?;
    let floor = 0.8 * base;
    if sample.events_per_sec < floor {
        return Err(format!(
            "net perf regression: reactor@{workers} delivers {:.0} events/sec, \
             below 80% of the committed baseline {base:.0} (floor {floor:.0})",
            sample.events_per_sec
        ));
    }
    Ok(format!(
        "net baseline gate ok: reactor@{workers} {:.0} events/sec >= floor {floor:.0}",
        sample.events_per_sec
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_engines_complete_the_scenario_and_count_events() {
        for engine in [NetEngine::Threaded, NetEngine::Reactor] {
            let s = run_net_sample(engine, 8);
            assert!(s.chunks > 0, "{engine:?} processed no chunks");
            assert!(s.events > 0, "{engine:?} delivered no events");
            assert!(s.events_per_sec > 0.0);
        }
    }

    #[test]
    fn netmodel_steady_state_is_allocation_free() {
        // Without the counting allocator installed (unit tests use the
        // system allocator) the reading is trivially zero; under
        // exp_perf it is the real assertion. Either way the call must
        // not panic and must report zero here.
        assert_eq!(netmodel_steady_state_bytes(64, 100), 0);
    }

    #[test]
    fn json_scan_reads_numbers_and_rejects_absences() {
        let json = "{\n  \"workers\": 256,\n  \"events_per_sec\": 1234.5\n}";
        assert_eq!(scan_json_number(json, "workers"), Some(256.0));
        assert_eq!(scan_json_number(json, "events_per_sec"), Some(1234.5));
        assert_eq!(scan_json_number(json, "missing"), None);
    }

    #[test]
    fn baseline_gate_trips_on_a_regression_and_passes_at_par() {
        let sample = NetPerfSample {
            engine: "reactor".into(),
            workers: 256,
            chunks: 10,
            events: 100,
            events_per_sec: 1000.0,
            wall_secs: 0.1,
            heap_high_water: 0,
        };
        let base = "{ \"workers\": 256, \"events_per_sec\": 1000.0 }";
        assert!(check_net_baseline(base, std::slice::from_ref(&sample)).is_ok());
        let hot = "{ \"workers\": 256, \"events_per_sec\": 1200.0 }";
        assert!(check_net_baseline(hot, std::slice::from_ref(&sample)).is_ok());
        let far = "{ \"workers\": 256, \"events_per_sec\": 2000.0 }";
        assert!(check_net_baseline(far, std::slice::from_ref(&sample)).is_err());
        assert!(
            check_net_baseline(base, &[]).is_err(),
            "missing sample must fail"
        );
        assert!(
            check_net_baseline("{}", &[sample]).is_err(),
            "empty baseline must fail"
        );
    }
}
