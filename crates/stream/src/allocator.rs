//! Weighted max-min steady-state allocation across concurrent jobs.
//!
//! `core::steady` maximizes the throughput of **one** job on the star
//! (Table 1). With several jobs sharing the port, raw maximization would
//! starve whoever has the worst communication-to-computation geometry,
//! so the multi-job allocator solves the *weighted max-min* extension
//! instead: maximize the fairness level `z` such that every active job
//! `j` with weight `ω_j` sustains at least `ω_j · z` block updates per
//! second, subject to the same one-port and per-worker rate constraints
//! (each `(job, worker)` pair keeps its own chunk side `μ_{j,i}`, hence
//! its own port cost per update `2 c_i / μ_{j,i}`). A small secondary
//! objective on the raw rates spends capacity the bottleneck job cannot
//! use.
//!
//! The resulting per-job **port shares** drive the deficit scheduler of
//! [`crate::multi::MultiJobMaster`].

use stargemm_lp::LpProblem;
use stargemm_platform::Platform;

/// Secondary objective weight: prefer higher total throughput among
/// allocations with the same max-min level, without disturbing it.
const EPS_THROUGHPUT: f64 = 1e-6;

/// One active job's demand as seen by the allocator.
#[derive(Clone, Debug)]
pub struct JobDemand {
    /// Per-worker chunk side `μ_{j,i}` (0 = this worker cannot serve
    /// the job).
    pub sides: Vec<usize>,
    /// Fairness weight `ω_j > 0`.
    pub weight: f64,
}

/// The allocator's solution.
#[derive(Clone, Debug)]
pub struct MultiJobAllocation {
    /// Per-job steady-state throughput (block updates per second).
    pub rates: Vec<f64>,
    /// Per-job share of the master's port implied by the rates
    /// (operand traffic only; sums to at most 1).
    pub port_shares: Vec<f64>,
    /// The weighted max-min level `z = min_j rate_j / ω_j`.
    pub level: f64,
}

/// Solves the weighted max-min LP for the given demands. Returns `None`
/// when a demand has no usable worker or the LP fails (degenerate
/// platform) — callers fall back to plain weight shares.
pub fn weighted_maxmin(platform: &Platform, demands: &[JobDemand]) -> Option<MultiJobAllocation> {
    let p = platform.len();
    if demands.is_empty() {
        return Some(MultiJobAllocation {
            rates: vec![],
            port_shares: vec![],
            level: 0.0,
        });
    }
    // Variable layout: one x_{j,i} per (job, worker) pair with a
    // positive side, then z last.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (j, d) in demands.iter().enumerate() {
        assert_eq!(d.sides.len(), p, "demand must describe every worker");
        if !(d.weight.is_finite() && d.weight > 0.0) {
            return None;
        }
        let before = pairs.len();
        pairs.extend((0..p).filter(|&i| d.sides[i] > 0).map(|i| (j, i)));
        if pairs.len() == before {
            return None; // job j has no usable worker
        }
    }
    let nvars = pairs.len() + 1;
    let z = nvars - 1;

    let mut objective = vec![EPS_THROUGHPUT; nvars];
    objective[z] = 1.0;

    let mut constraints = Vec::new();
    let mut rhs = Vec::new();

    // One-port: operand traffic of every job shares the master's port.
    let port_cost = |j: usize, i: usize| 2.0 * platform.worker(i).c / demands[j].sides[i] as f64;
    let mut port = vec![0.0; nvars];
    for (v, &(j, i)) in pairs.iter().enumerate() {
        port[v] = port_cost(j, i);
    }
    constraints.push(port);
    rhs.push(1.0);

    // Per-worker compute rate.
    for i in 0..p {
        let mut row = vec![0.0; nvars];
        for (v, &(j2, i2)) in pairs.iter().enumerate() {
            if i2 == i {
                row[v] = platform.worker(i).w;
                let _ = j2;
            }
        }
        constraints.push(row);
        rhs.push(1.0);
    }

    // Weighted max-min coupling: ω_j·z − Σ_i x_{j,i} ≤ 0.
    for (j, d) in demands.iter().enumerate() {
        let mut row = vec![0.0; nvars];
        for (v, &(j2, _)) in pairs.iter().enumerate() {
            if j2 == j {
                row[v] = -1.0;
            }
        }
        row[z] = d.weight;
        constraints.push(row);
        rhs.push(0.0);
    }

    let sol = LpProblem {
        objective,
        constraints,
        rhs,
    }
    .solve()
    .ok()?;

    let mut rates = vec![0.0; demands.len()];
    let mut port_shares = vec![0.0; demands.len()];
    for (v, &(j, i)) in pairs.iter().enumerate() {
        rates[j] += sol.x[v];
        port_shares[j] += sol.x[v] * port_cost(j, i);
    }
    Some(MultiJobAllocation {
        rates,
        port_shares,
        level: sol.x[z],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stargemm_platform::WorkerSpec;

    fn platform() -> Platform {
        Platform::new(
            "alloc",
            vec![WorkerSpec::new(0.2, 0.1, 60), WorkerSpec::new(0.4, 0.2, 40)],
        )
    }

    fn demand(weight: f64) -> JobDemand {
        JobDemand {
            sides: vec![4, 3],
            weight,
        }
    }

    #[test]
    fn equal_weights_split_equally() {
        let alloc = weighted_maxmin(&platform(), &[demand(1.0), demand(1.0)]).unwrap();
        assert!(alloc.level > 0.0);
        assert!(
            (alloc.rates[0] - alloc.rates[1]).abs() < 1e-6,
            "{:?}",
            alloc.rates
        );
    }

    #[test]
    fn weights_scale_the_guaranteed_rates() {
        let alloc = weighted_maxmin(&platform(), &[demand(1.0), demand(3.0)]).unwrap();
        // Both jobs are pinned at ω_j z by the shared bottleneck, so the
        // rate ratio follows the weights.
        assert!(alloc.rates[0] >= 1.0 * alloc.level - 1e-9);
        assert!(alloc.rates[1] >= 3.0 * alloc.level - 1e-9);
        assert!(
            (alloc.rates[1] / alloc.rates[0] - 3.0).abs() < 0.05,
            "{:?}",
            alloc.rates
        );
    }

    #[test]
    fn port_shares_respect_the_one_port() {
        for n in 1..5usize {
            let demands: Vec<JobDemand> = (0..n).map(|j| demand(1.0 + j as f64)).collect();
            let alloc = weighted_maxmin(&platform(), &demands).unwrap();
            let total: f64 = alloc.port_shares.iter().sum();
            assert!(total <= 1.0 + 1e-6, "n={n}: port over-subscribed {total}");
        }
    }

    #[test]
    fn single_job_matches_the_table1_view() {
        // With one job of weight 1, max-min degenerates to plain
        // throughput maximization under the same constraints; the level
        // must equal the single-job steady-state optimum on the same
        // per-worker sides.
        let p = platform();
        let alloc = weighted_maxmin(&p, &[demand(1.0)]).unwrap();
        // Hand-check: rate_i ≤ 1/w_i and Σ 2c_i/μ_i·rate_i ≤ 1.
        // Worker 0: full rate 10, port cost 0.1/update → port 1.0 alone.
        // Optimal packs worker 0 to 10/s (port full) — or better mixes.
        assert!(alloc.level > 0.0);
        let port: f64 = alloc.port_shares.iter().sum();
        assert!(port <= 1.0 + 1e-6);
        assert!((alloc.rates[0] - alloc.level).abs() < 1e-6);
    }

    #[test]
    fn unusable_job_yields_none() {
        let bad = JobDemand {
            sides: vec![0, 0],
            weight: 1.0,
        };
        assert!(weighted_maxmin(&platform(), &[demand(1.0), bad]).is_none());
    }

    #[test]
    fn empty_demand_set_is_trivial() {
        let alloc = weighted_maxmin(&platform(), &[]).unwrap();
        assert!(alloc.rates.is_empty());
        assert_eq!(alloc.level, 0.0);
    }
}
