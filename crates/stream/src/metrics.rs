//! Stream-level metrics: per-job response and slowdown, quantiles, and
//! the aggregate steady-state throughput bound.
//!
//! *Slowdown* of a job is its response time (completion − arrival)
//! divided by its **solo** makespan — the time the same job takes on the
//! same (empty) platform with the full memory of every worker. The
//! aggregate throughput of *any* multi-job schedule is bounded by the
//! single-port steady-state optimum of `core::steady`: over a whole run
//! of length `T`, worker `i`'s `U_i` updates satisfy `U_i·w_i ≤ T` and
//! move at least `2·U_i/μ_i` operand blocks through the port, so
//! `(U_i/T)_i` is feasible for the Table 1 LP and
//! `Σ U_i / T ≤ ρ*`. `tests/stream_props.rs` pins this property.

use std::collections::BTreeMap;

use serde::Serialize;
use stargemm_core::steady::bandwidth_centric;
use stargemm_core::Job;
use stargemm_obs::{RunMetrics, TenantGap};
use stargemm_platform::Platform;
use stargemm_sim::{PortStats, RunStats, Simulator};

use crate::multi::{MultiJobMaster, StreamConfig};
use crate::workload::JobRequest;

/// Per-tenant slice of a stream run: the fairness view the aggregate
/// numbers hide.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct TenantReport {
    /// Tenant index (order of the workload's `TenantSpec`s).
    pub tenant: usize,
    /// The tenant's fairness weight (as carried by its requests).
    pub weight: f64,
    /// The tenant's jobs that completed before the run ended.
    pub completed: usize,
    /// The tenant's jobs in the stream.
    pub total: usize,
    /// Block updates of the tenant's completed jobs per second of run.
    pub throughput: f64,
    /// Mean response time over the tenant's completed jobs.
    pub mean_response: f64,
    /// Median slowdown over the tenant's completed jobs.
    pub p50_slowdown: f64,
    /// 95th percentile slowdown.
    pub p95_slowdown: f64,
}

/// Aggregate report over one stream run.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct StreamReport {
    /// Jobs that completed before the run ended.
    pub completed: usize,
    /// Jobs in the stream.
    pub total: usize,
    /// End of the run (last retrieval), model seconds.
    pub makespan: f64,
    /// Achieved aggregate throughput, block updates per second.
    pub throughput: f64,
    /// Steady-state aggregate throughput bound of the platform.
    pub throughput_bound: f64,
    /// Mean response time over completed jobs.
    pub mean_response: f64,
    /// Slowdown quantiles over completed jobs (nearest-rank).
    pub p50_slowdown: f64,
    /// 95th percentile slowdown.
    pub p95_slowdown: f64,
    /// 99th percentile slowdown.
    pub p99_slowdown: f64,
    /// Per-tenant throughput and slowdown, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Port-level breakdown of the run (per-lane busy time, idle gaps,
    /// longest stall), straight from the engine.
    pub port: PortStats,
    /// Bound-gap metrics: port utilization vs its lane bound, achieved
    /// vs LP throughput, per-worker busy vs steady-state plan share,
    /// per-tenant achieved vs weight-proportional share of the bound.
    pub metrics: RunMetrics,
}

/// Aggregate steady-state throughput bound of `platform`: the
/// bandwidth-centric optimum with uncapped chunk sides. No multi-job
/// schedule on a platform at (or below) its nominal speed can exceed it.
pub fn aggregate_throughput_bound(platform: &Platform) -> f64 {
    bandwidth_centric(platform, usize::MAX).throughput
}

/// Solo makespan of `job` on an empty `platform`: a single-slot stream
/// holding only this job (full memory, same serving discipline) — the
/// baseline slowdowns are measured against.
pub fn solo_makespan(platform: &Platform, job: &Job) -> f64 {
    let req = [JobRequest {
        id: 0,
        tenant: 0,
        weight: 1.0,
        job: *job,
        arrival: 0.0,
    }];
    let cfg = StreamConfig {
        slots: 1,
        window: 2,
    };
    let mut policy =
        MultiJobMaster::new(platform, &req, cfg).expect("solo job fits the full memory");
    Simulator::new(platform.clone())
        .with_arrivals(MultiJobMaster::arrival_plan(&req))
        .run(&mut policy)
        .expect("solo run completes")
        .makespan
}

/// Nearest-rank quantile of an unsorted sample (`q ∈ [0, 1]`); NaN on an
/// empty sample.
pub fn quantile(sample: &[f64], q: f64) -> f64 {
    if sample.is_empty() {
        return f64::NAN;
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Builds the aggregate report of one stream run. Solo baselines are
/// computed once per distinct job shape (cached).
pub fn stream_report(
    platform: &Platform,
    requests: &[JobRequest],
    stats: &RunStats,
) -> StreamReport {
    #[derive(Default)]
    struct TenantAcc {
        responses: Vec<f64>,
        slowdowns: Vec<f64>,
        updates: u64,
        total: usize,
        weight: f64,
    }
    let mut solo_cache: BTreeMap<(usize, usize, usize, usize), f64> = BTreeMap::new();
    let mut slowdowns = Vec::new();
    let mut responses = Vec::new();
    let mut per_tenant: BTreeMap<usize, TenantAcc> = BTreeMap::new();
    for req in requests {
        let slot = per_tenant.entry(req.tenant).or_default();
        slot.weight = req.weight;
        slot.total += 1;
    }
    for js in &stats.jobs {
        let Some(response) = js.response_time() else {
            continue;
        };
        let req = requests
            .iter()
            .find(|r| r.id == js.job)
            .expect("stats report only scheduled jobs");
        let key = (req.job.r, req.job.t, req.job.s, req.job.q);
        let solo = *solo_cache
            .entry(key)
            .or_insert_with(|| solo_makespan(platform, &req.job));
        responses.push(response);
        slowdowns.push(response / solo);
        let slot = per_tenant.get_mut(&req.tenant).expect("seeded above");
        slot.responses.push(response);
        slot.slowdowns.push(response / solo);
        slot.updates += req.job.total_updates();
    }
    let completed = responses.len();
    let mean = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let tenants: Vec<TenantReport> = per_tenant
        .into_iter()
        .map(|(tenant, acc)| TenantReport {
            tenant,
            weight: acc.weight,
            completed: acc.responses.len(),
            total: acc.total,
            throughput: if stats.makespan > 0.0 {
                acc.updates as f64 / stats.makespan
            } else {
                f64::NAN
            },
            mean_response: mean(&acc.responses),
            p50_slowdown: quantile(&acc.slowdowns, 0.50),
            p95_slowdown: quantile(&acc.slowdowns, 0.95),
        })
        .collect();
    let throughput_bound = aggregate_throughput_bound(platform);
    let steady = bandwidth_centric(platform, usize::MAX);
    let busy_fractions: Vec<f64> = stats
        .per_worker
        .iter()
        .map(|w| {
            if stats.makespan > 0.0 {
                w.busy_time / stats.makespan
            } else {
                0.0
            }
        })
        .collect();
    // Steady-state compute occupancy of worker i: x_i updates/s, each
    // occupying the worker w_i seconds.
    let plan_shares: Vec<f64> = steady
        .rates
        .iter()
        .zip(platform.workers())
        .map(|(x, s)| x * s.w)
        .collect();
    let mut metrics = RunMetrics::derive(
        stats.makespan,
        stats.port_busy,
        stats.port.peak_lanes as usize,
        stats.throughput(),
        throughput_bound,
        &busy_fractions,
        &plan_shares,
    );
    let total_weight: f64 = tenants.iter().map(|t: &TenantReport| t.weight).sum();
    metrics.tenants = tenants
        .iter()
        .map(|t| TenantGap {
            tenant: t.tenant,
            achieved: t.throughput,
            bound: if total_weight > 0.0 {
                throughput_bound * t.weight / total_weight
            } else {
                throughput_bound
            },
        })
        .collect();
    StreamReport {
        completed,
        total: requests.len(),
        makespan: stats.makespan,
        throughput: stats.throughput(),
        throughput_bound,
        mean_response: mean(&responses),
        p50_slowdown: quantile(&slowdowns, 0.50),
        p95_slowdown: quantile(&slowdowns, 0.95),
        p99_slowdown: quantile(&slowdowns, 0.99),
        tenants,
        port: stats.port.clone(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ArrivalProcess, TenantSpec, WorkloadSpec};
    use stargemm_platform::WorkerSpec;

    fn platform() -> Platform {
        Platform::new(
            "metrics",
            vec![WorkerSpec::new(0.2, 0.1, 60), WorkerSpec::new(0.4, 0.2, 40)],
        )
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let s = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&s, 0.50), 2.0);
        assert_eq!(quantile(&s, 0.95), 4.0);
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 1.0), 4.0);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn solo_baseline_is_positive_and_deterministic() {
        let job = Job::new(4, 3, 6, 2);
        let a = solo_makespan(&platform(), &job);
        let b = solo_makespan(&platform(), &job);
        assert!(a > 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn report_covers_a_full_run_with_slowdowns_at_least_one() {
        let reqs = WorkloadSpec {
            tenants: vec![TenantSpec::new("t", 1.0, vec![Job::new(4, 3, 6, 2)])],
            arrivals: ArrivalProcess::Open {
                mean_interarrival: 30.0,
            },
            jobs: 4,
            seed: 5,
        }
        .generate();
        let mut policy = MultiJobMaster::new(&platform(), &reqs, StreamConfig::default()).unwrap();
        let stats = Simulator::new(platform())
            .with_arrivals(MultiJobMaster::arrival_plan(&reqs))
            .run(&mut policy)
            .unwrap();
        let report = stream_report(&platform(), &reqs, &stats);
        assert_eq!(report.completed, 4);
        assert_eq!(report.total, 4);
        // A shared platform can never beat the solo baseline.
        assert!(report.p50_slowdown >= 1.0 - 1e-9, "{report:?}");
        assert!(report.p99_slowdown >= report.p50_slowdown);
        assert!(report.throughput <= report.throughput_bound + 1e-9);
        assert!(report.mean_response > 0.0);
        // The single tenant's slice covers the whole run.
        assert_eq!(report.tenants.len(), 1);
        let t = &report.tenants[0];
        assert_eq!((t.tenant, t.completed, t.total), (0, 4, 4));
        assert!((t.throughput - report.throughput).abs() < 1e-9);
        assert!(t.p50_slowdown >= 1.0 - 1e-9);
    }

    #[test]
    fn per_tenant_slices_partition_the_aggregate() {
        let reqs = WorkloadSpec {
            tenants: vec![
                TenantSpec::new("light", 1.0, vec![Job::new(4, 3, 6, 2)]),
                TenantSpec::new("heavy", 3.0, vec![Job::new(6, 4, 8, 2)]),
            ],
            arrivals: ArrivalProcess::Open {
                mean_interarrival: 25.0,
            },
            jobs: 6,
            seed: 9,
        }
        .generate();
        let mut policy = MultiJobMaster::new(&platform(), &reqs, StreamConfig::default()).unwrap();
        let stats = Simulator::new(platform())
            .with_arrivals(MultiJobMaster::arrival_plan(&reqs))
            .run(&mut policy)
            .unwrap();
        let report = stream_report(&platform(), &reqs, &stats);
        // Tenant slices are disjoint and exhaustive.
        assert_eq!(
            report.tenants.iter().map(|t| t.total).sum::<usize>(),
            report.total
        );
        assert_eq!(
            report.tenants.iter().map(|t| t.completed).sum::<usize>(),
            report.completed
        );
        // Tenant throughputs sum to the aggregate (same denominator).
        let sum: f64 = report.tenants.iter().map(|t| t.throughput).sum();
        assert!((sum - report.throughput).abs() < 1e-9, "{report:?}");
        // Weights are carried through for the fairness view.
        let weights: Vec<f64> = report.tenants.iter().map(|t| t.weight).collect();
        assert_eq!(weights, vec![1.0, 3.0]);
    }
}
