//! The multi-job master: online time-sharing of the one-port star.
//!
//! [`MultiJobMaster`] is a [`MasterPolicy`] that serves a *stream* of
//! independent GEMM jobs:
//!
//! * **Admission.** Arrivals (delivered as
//!   [`SimEvent::JobArrived`]) queue FIFO in a backlog; at most
//!   [`StreamConfig::slots`] jobs are admitted at once. Each worker's
//!   memory is statically partitioned into `slots` slices, so the per-job
//!   chunk sides (`μ² + 2·window·μ ≤ m_i / slots`) make any interleaving
//!   of admitted jobs memory-safe by construction.
//! * **Planning.** An admitted job is carved into column strips
//!   round-robin over the workers that fit it (globally unique chunk
//!   ids) and driven by its own demand-driven
//!   [`StreamingMaster`] lane set.
//! * **Dispatch.** Whenever the port frees, jobs are served by *deficit*:
//!   the active job with the smallest spent-port-time over its share goes
//!   first. Shares come from the weighted max-min steady-state LP
//!   ([`crate::allocator`]), refreshed whenever the active set changes;
//!   if the LP degenerates the tenant weights serve directly.
//! * **Completion.** When a job's last chunk is retrieved the master
//!   issues [`Action::CompleteJob`], the engine timestamps it into
//!   [`stargemm_sim::RunStats::jobs`], and the next backlog job is
//!   admitted.
//! * **Churn.** On dynamic platforms, lanes of downed workers are
//!   drained and lost regions re-planned onto surviving workers (split
//!   to fit their partitioned sides), mirroring `stargemm-dyn`'s
//!   recovery; regions nobody can host are parked until a rejoin.
//! * **DAG jobs.** A request registered with a [`DagJob`]
//!   ([`MultiJobMaster::with_dags`]) is admitted as a
//!   [`DagMaster`] member instead of a plain chunk-queue member: its
//!   ready frontier replaces linear chunk lanes, its chunk ids come from
//!   a private namespace above [`DAG_ID_BASE`], and crashes are healed
//!   by the member itself (lost tasks re-enter the frontier; successors
//!   stay blocked). Deficit accounting, LP shares, memory partitioning
//!   and completion all work identically for both member kinds.

use std::collections::{HashMap, VecDeque};

use stargemm_core::geometry::{carve_strip, plan_chunk, ChunkGeom, PlannedChunk};
use stargemm_core::layout::mu_with_window;
use stargemm_core::stream::{GeometryAccess, Serving, StreamingMaster};
use stargemm_core::Job;
use stargemm_dag::{DagJob, DagMaster, TaskId};
use stargemm_platform::Platform;
use stargemm_sim::{Action, ChunkId, JobId, MasterPolicy, SimCtx, SimEvent, StepId};
use stargemm_sim::{ObsEvent, ObsSink};

use crate::allocator::{weighted_maxmin, JobDemand};
use crate::workload::JobRequest;

/// First chunk id of the DAG namespace: DAG members draw their ids from
/// `DAG_ID_BASE + job_id · DAG_ID_SPAN`, far above anything the GEMM
/// carving counter reaches, so ownership of a chunk is decidable from
/// its id alone.
pub const DAG_ID_BASE: ChunkId = 0x4000_0000;

/// Ids reserved per DAG job (bounds re-dispatches after crashes, not
/// task count — a job re-planning a task gets a fresh id).
pub const DAG_ID_SPAN: ChunkId = 0x0010_0000;

/// Tuning of the multi-job master.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Maximum concurrently admitted jobs (the multiprogramming level).
    /// Every worker's memory is split into this many slices.
    pub slots: usize,
    /// Per-lane lookahead window in steps (2 = the paper's
    /// double-buffered layout).
    pub window: StepId,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            slots: 2,
            window: 2,
        }
    }
}

/// Why a stream cannot be scheduled on a platform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// A job of the stream fits no worker once memory is partitioned
    /// into the configured number of slots.
    Infeasible {
        /// The offending job id.
        job: JobId,
    },
    /// The [`StreamConfig`] itself is unusable (zero slots or a zero
    /// lookahead window).
    Config(String),
    /// Two requests carry the same job id.
    DuplicateJob {
        /// The repeated id.
        job: JobId,
    },
    /// A DAG was registered for a job id absent from the request list.
    UnknownDagJob {
        /// The dangling id.
        job: JobId,
    },
    /// Two DAGs were registered for the same job id.
    DuplicateDag {
        /// The repeated id.
        job: JobId,
    },
    /// A DAG job's id is too large for the reserved chunk-id namespace.
    DagIdOverflow {
        /// The offending id.
        job: JobId,
    },
    /// A DAG job's request dimensions disagree with the DAG's virtual
    /// GEMM (`dag.virtual_job(q)`).
    DagMismatch {
        /// The offending id.
        job: JobId,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Infeasible { job } => write!(
                f,
                "job {job} fits no worker under the partitioned memory layout"
            ),
            StreamError::Config(msg) => write!(f, "bad stream config: {msg}"),
            StreamError::DuplicateJob { job } => write!(f, "duplicate job id {job}"),
            StreamError::UnknownDagJob { job } => {
                write!(f, "DAG registered for unknown job {job}")
            }
            StreamError::DuplicateDag { job } => write!(f, "duplicate DAG for job {job}"),
            StreamError::DagIdOverflow { job } => {
                write!(f, "job id {job} outside the DAG chunk-id namespace")
            }
            StreamError::DagMismatch { job } => {
                write!(f, "job {job} does not match its DAG's virtual GEMM")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// The policy executing one admitted job's chunks.
enum Member {
    /// A plain GEMM: static per-worker chunk queues.
    Gemm(Box<StreamingMaster>),
    /// A DAG job: ready-frontier dispatch with its own id namespace.
    Dag(Box<DagMaster>),
}

impl Member {
    fn next_action(&mut self, ctx: &SimCtx) -> Action {
        match self {
            Member::Gemm(m) => m.next_action(ctx),
            Member::Dag(m) => m.next_action(ctx),
        }
    }

    fn on_event(&mut self, ev: &SimEvent, ctx: &SimCtx) {
        match self {
            Member::Gemm(m) => m.on_event(ev, ctx),
            Member::Dag(m) => m.on_event(ev, ctx),
        }
    }

    fn geom(&self, id: ChunkId) -> Option<ChunkGeom> {
        match self {
            Member::Gemm(m) => m.geom(id).copied(),
            Member::Dag(m) => m.chunk_geom(id),
        }
    }

    fn is_dag(&self) -> bool {
        matches!(self, Member::Dag(_))
    }

    /// The GEMM master behind this member — queue-surgery recovery is
    /// only ever invoked on GEMM members (DAG members self-heal).
    fn as_gemm_mut(&mut self) -> &mut StreamingMaster {
        match self {
            Member::Gemm(m) => m,
            Member::Dag(_) => unreachable!("queue surgery on a DAG member"),
        }
    }

    fn as_gemm(&self) -> &StreamingMaster {
        match self {
            Member::Gemm(m) => m,
            Member::Dag(_) => unreachable!("queue surgery on a DAG member"),
        }
    }
}

/// One admitted, in-flight job.
struct ActiveJob {
    id: JobId,
    weight: f64,
    job: Job,
    /// The memory slot this job occupies (its per-worker caps come from
    /// [`slot_cap`] at this index).
    slot: usize,
    /// Per-worker chunk sides under the partitioned layout (0 = worker
    /// cannot serve this job).
    sides: Vec<usize>,
    member: Member,
    /// Port seconds this job has been charged so far (deficit counter).
    port_used: f64,
    /// Port share from the allocator (fallback: the tenant weight).
    share: f64,
    /// Lost regions currently without a host.
    stranded: Vec<ChunkGeom>,
}

/// Counters exposed for tests and experiment reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Jobs admitted so far.
    pub admitted: u64,
    /// Jobs completed so far.
    pub completed: u64,
    /// Peak backlog length observed.
    pub peak_backlog: usize,
    /// Chunks re-planned after crashes.
    pub reassigned_chunks: u64,
    /// Allocator refreshes (active-set changes).
    pub reallocations: u64,
}

/// See the module docs.
pub struct MultiJobMaster {
    platform: Platform,
    cfg: StreamConfig,
    /// The full request script, by id; a job only *opens* when its
    /// arrival event fires.
    requests: HashMap<JobId, JobRequest>,
    expected: usize,
    backlog: VecDeque<JobId>,
    active: Vec<ActiveJob>,
    completed: Vec<JobId>,
    /// Owner job of every planned chunk (ids are globally unique).
    owner: HashMap<ChunkId, JobId>,
    next_chunk_id: ChunkId,
    up: Vec<bool>,
    shares_dirty: bool,
    /// Retrieved chunk geometries per job (coverage audits).
    retrieved: HashMap<JobId, Vec<ChunkGeom>>,
    /// Task graphs of the requests that are DAG jobs.
    dag_specs: HashMap<JobId, DagJob>,
    /// Task completion orders of finished DAG jobs.
    dag_completions: HashMap<JobId, Vec<TaskId>>,
    stats: StreamStats,
    /// Structured-event sink (off by default; observation only).
    obs: ObsSink,
    /// Head-of-line job currently blocked on memory (no fitting free
    /// slot on a live worker), if any. Pure observation state feeding
    /// `MemoryStallBegin`/`MemoryStallEnd` — never read by scheduling.
    mem_stalled: Option<JobId>,
    /// Engine clock mirrored at every policy entry point, so admission
    /// and share refreshes (which have no `ctx` in hand) can timestamp
    /// their events.
    now: f64,
}

/// Memory cap of slice `slot` on a worker with `m` block buffers: an
/// even `m / slots` split with the `m mod slots` remainder blocks
/// assigned deterministically to the **lowest** slot indices first, so
/// `Σ_slot slot_cap(m, slots, slot) = m` exactly. (A plain integer
/// division stranded the remainder on every worker and pushed
/// small-memory workers to `μ = 0` infeasibility.)
pub(crate) fn slot_cap(m: usize, slots: usize, slot: usize) -> usize {
    debug_assert!(slot < slots);
    m / slots + usize::from(slot < m % slots)
}

/// Per-worker chunk sides for `job` in memory slice `slot` when memory
/// is split `slots` ways.
pub(crate) fn partitioned_sides(
    platform: &Platform,
    job: &Job,
    cfg: &StreamConfig,
    slot: usize,
) -> Vec<usize> {
    platform
        .workers()
        .iter()
        .map(|s| mu_with_window(slot_cap(s.m, cfg.slots, slot), cfg.window as usize).min(job.r))
        .collect()
}

impl MultiJobMaster {
    /// A master for the given request stream.
    ///
    /// Validates up front that every job fits at least one worker under
    /// the partitioned memory layout, and returns a typed
    /// [`StreamError`] for every malformed input (bad config, duplicate
    /// ids, infeasible jobs) instead of panicking.
    pub fn new(
        platform: &Platform,
        requests: &[JobRequest],
        cfg: StreamConfig,
    ) -> Result<Self, StreamError> {
        Self::with_dags(platform, requests, Vec::new(), cfg)
    }

    /// A master for a stream mixing plain GEMM jobs and DAG jobs: each
    /// `(id, dag)` pair turns the request with that id into a DAG member.
    /// The request's `job` must equal `dag.virtual_job(q)` for its block
    /// side `q` — the DAG's schedule *is* a schedule of that GEMM.
    ///
    /// All malformed inputs — zero slots, a zero window, duplicate job
    /// ids, a DAG for an unknown request, a DAG job id outside the id
    /// namespace, a DAG/job dimension mismatch, or an infeasible job —
    /// are reported as typed [`StreamError`]s.
    pub fn with_dags(
        platform: &Platform,
        requests: &[JobRequest],
        dags: Vec<(JobId, DagJob)>,
        cfg: StreamConfig,
    ) -> Result<Self, StreamError> {
        if cfg.slots < 1 {
            return Err(StreamError::Config(
                "at least one job slot is required".into(),
            ));
        }
        if cfg.window < 1 {
            return Err(StreamError::Config("window must be at least 1 step".into()));
        }
        let mut dag_specs = HashMap::new();
        for (id, dag) in dags {
            if !requests.iter().any(|r| r.id == id) {
                return Err(StreamError::UnknownDagJob { job: id });
            }
            if (id as ChunkId) >= (ChunkId::MAX - DAG_ID_BASE) / DAG_ID_SPAN {
                return Err(StreamError::DagIdOverflow { job: id });
            }
            if dag_specs.insert(id, dag).is_some() {
                return Err(StreamError::DuplicateDag { job: id });
            }
        }
        let mut by_id = HashMap::new();
        for r in requests {
            // Feasibility is checked against slot 0 — the largest slice
            // ([`slot_cap`] is non-increasing in the slot index), so a
            // job infeasible there is infeasible in every slot.
            let feasible = match dag_specs.get(&r.id) {
                Some(dag) => {
                    if r.job != dag.virtual_job(r.job.q) {
                        return Err(StreamError::DagMismatch { job: r.id });
                    }
                    // Every task must fit some worker's memory slice.
                    let caps: Vec<usize> = platform
                        .workers()
                        .iter()
                        .map(|s| slot_cap(s.m, cfg.slots, 0))
                        .collect();
                    (0..dag.len()).all(|t| caps.iter().any(|&m| 2 * dag.width(t) < m))
                }
                None => partitioned_sides(platform, &r.job, &cfg, 0)
                    .iter()
                    .any(|&s| s > 0),
            };
            if !feasible {
                return Err(StreamError::Infeasible { job: r.id });
            }
            if by_id.insert(r.id, *r).is_some() {
                return Err(StreamError::DuplicateJob { job: r.id });
            }
        }
        Ok(MultiJobMaster {
            platform: platform.clone(),
            cfg,
            expected: by_id.len(),
            requests: by_id,
            backlog: VecDeque::new(),
            active: Vec::new(),
            completed: Vec::new(),
            owner: HashMap::new(),
            next_chunk_id: 0,
            up: vec![true; platform.len()],
            shares_dirty: false,
            retrieved: HashMap::new(),
            dag_specs,
            dag_completions: HashMap::new(),
            stats: StreamStats::default(),
            obs: ObsSink::off(),
            mem_stalled: None,
            now: 0.0,
        })
    }

    /// Attaches a structured-event sink: the master then emits job
    /// admissions, LP re-solves, deficit credits, and (through its DAG
    /// members) frontier promotions. Observation only — the schedule is
    /// identical with the sink on or off.
    #[must_use]
    pub fn with_obs(mut self, obs: ObsSink) -> Self {
        self.obs = obs;
        self
    }

    /// The arrival plan to attach to the engine
    /// ([`stargemm_sim::Simulator::with_arrivals`]).
    pub fn arrival_plan(requests: &[JobRequest]) -> Vec<(f64, JobId)> {
        requests.iter().map(|r| (r.arrival, r.id)).collect()
    }

    /// Stream-level counters.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Retrieved chunk geometries of `job` (tile the job's C exactly on
    /// a completed run, whatever crashes re-planned on the way).
    pub fn retrieved_geoms(&self, job: JobId) -> &[ChunkGeom] {
        self.retrieved.get(&job).map_or(&[], Vec::as_slice)
    }

    /// Ids of the jobs completed so far, in completion order.
    pub fn completed_jobs(&self) -> &[JobId] {
        &self.completed
    }

    /// The task graph registered for `job`, if it is a DAG job.
    pub fn dag_spec(&self, job: JobId) -> Option<&DagJob> {
        self.dag_specs.get(&job)
    }

    /// Task completion order of a *finished* DAG job — a topological
    /// order of its graph by construction (tests assert it).
    pub fn dag_completion_order(&self, job: JobId) -> &[TaskId] {
        self.dag_completions.get(&job).map_or(&[], Vec::as_slice)
    }

    // ------------------------------------------------------------------
    // Admission and planning.
    // ------------------------------------------------------------------

    /// Per-worker memory caps of slice `slot`.
    fn slot_caps(&self, slot: usize) -> Vec<usize> {
        self.platform
            .workers()
            .iter()
            .map(|s| slot_cap(s.m, self.cfg.slots, slot))
            .collect()
    }

    /// Per-worker "sides" of a DAG job for the allocator: the widest
    /// task half-width each worker's slice `slot` accommodates, capped
    /// at the DAG's widest task (0 = the worker serves no task at all).
    fn dag_sides(&self, dag: &DagJob, slot: usize) -> Vec<usize> {
        self.platform
            .workers()
            .iter()
            .map(|s| {
                let cap = slot_cap(s.m, self.cfg.slots, slot);
                if cap < 3 {
                    0
                } else {
                    ((cap - 1) / 2).min(dag.max_width())
                }
            })
            .collect()
    }

    /// Admits backlog jobs FIFO while slots are free and the head job
    /// fits some free slot on a live worker. Slots are tried in
    /// ascending index order (slot 0 holds the remainder blocks, so it
    /// has the largest caps); the head job waits — it is never
    /// overtaken — if no free slot currently fits it.
    fn admit_ready(&mut self) {
        loop {
            let Some(&id) = self.backlog.front() else {
                self.note_mem_stall(None);
                return;
            };
            if self.active.len() >= self.cfg.slots {
                // Every slot is occupied: the head job is blocked on
                // the slot partition of worker memory.
                self.note_mem_stall(Some(id));
                return;
            }
            let req = self.requests[&id];
            // Lowest free slot where the job is feasible on a live
            // worker. Uneven memory makes feasibility slot-dependent:
            // a job may fit slot 0's caps but not slot 1's.
            let mut chosen: Option<(usize, Vec<usize>)> = None;
            for slot in 0..self.cfg.slots {
                if self.active.iter().any(|a| a.slot == slot) {
                    continue;
                }
                let sides = match self.dag_specs.get(&id) {
                    Some(dag) => {
                        let caps = self.slot_caps(slot);
                        if !(0..dag.len()).all(|t| caps.iter().any(|&m| 2 * dag.width(t) < m)) {
                            continue;
                        }
                        self.dag_sides(dag, slot)
                    }
                    None => partitioned_sides(&self.platform, &req.job, &self.cfg, slot),
                };
                if sides.iter().enumerate().any(|(w, &s)| s > 0 && self.up[w]) {
                    chosen = Some((slot, sides));
                    break;
                }
            }
            let Some((slot, sides)) = chosen else {
                // Head-of-line job has no live host (or no fitting free
                // slot) right now; admission resumes when a worker
                // rejoins or a slot frees (FIFO is kept — jobs are not
                // overtaken while they wait).
                self.note_mem_stall(Some(id));
                return;
            };
            self.note_mem_stall(None);
            self.backlog.pop_front();
            let member = match self.dag_specs.get(&id) {
                Some(dag) => {
                    let caps = self.slot_caps(slot);
                    let id_base = DAG_ID_BASE + id * DAG_ID_SPAN;
                    Member::Dag(Box::new(
                        DagMaster::with_capacity(
                            "stream-member-dag",
                            &self.platform,
                            dag.clone(),
                            req.job.q,
                            self.cfg.window,
                            caps,
                            id_base,
                        )
                        .expect("feasibility was validated at construction")
                        .with_obs(self.obs.clone(), id),
                    ))
                }
                None => {
                    let queues = carve_queues(&req.job, &sides, &self.up, &mut self.next_chunk_id);
                    debug_assert!(
                        self.next_chunk_id < DAG_ID_BASE,
                        "GEMM chunk ids ran into the DAG namespace"
                    );
                    for pc in queues.iter().flatten() {
                        self.owner.insert(pc.geom.id, id);
                    }
                    Member::Gemm(Box::new(StreamingMaster::new_static(
                        "stream-member",
                        req.job,
                        queues,
                        Serving::DemandDriven,
                        self.cfg.window,
                    )))
                }
            };
            // A newcomer starts at the lowest existing deficit so it
            // cannot monopolize the port to "catch up" on time it was
            // never entitled to.
            let port_used = self
                .active
                .iter()
                .map(|a| a.port_used)
                .fold(f64::INFINITY, f64::min);
            let port_used = if port_used.is_finite() {
                port_used
            } else {
                0.0
            };
            self.active.push(ActiveJob {
                id,
                weight: req.weight,
                job: req.job,
                slot,
                sides,
                member,
                port_used,
                share: req.weight,
                stranded: Vec::new(),
            });
            self.stats.admitted += 1;
            self.shares_dirty = true;
            self.obs.emit(|| ObsEvent::JobAdmitted {
                time: self.now,
                job: id,
            });
        }
    }

    /// Tracks the head-of-line memory stall episode and emits the
    /// begin/end transition events. `head` is the job currently blocked
    /// on memory (`None` = not blocked). Observation only: the tracked
    /// state is never read by any scheduling decision.
    fn note_mem_stall(&mut self, head: Option<JobId>) {
        if self.mem_stalled == head {
            return;
        }
        if let Some(prev) = self.mem_stalled.take() {
            self.obs.emit(|| ObsEvent::MemoryStallEnd {
                time: self.now,
                job: prev,
            });
        }
        if let Some(job) = head {
            self.mem_stalled = Some(job);
            self.obs.emit(|| ObsEvent::MemoryStallBegin {
                time: self.now,
                job,
            });
        }
    }

    /// Recomputes the per-job port shares from the weighted max-min LP
    /// (fallback: raw tenant weights).
    fn refresh_shares(&mut self) {
        self.shares_dirty = false;
        self.stats.reallocations += 1;
        let demands: Vec<JobDemand> = self
            .active
            .iter()
            .map(|a| JobDemand {
                sides: a
                    .sides
                    .iter()
                    .enumerate()
                    .map(|(w, &s)| if self.up[w] { s } else { 0 })
                    .collect(),
                weight: a.weight,
            })
            .collect();
        let alloc = weighted_maxmin(&self.platform, &demands);
        for (j, a) in self.active.iter_mut().enumerate() {
            a.share = match &alloc {
                Some(al) if al.port_shares[j] > 1e-12 => al.port_shares[j],
                _ => a.weight,
            };
        }
        self.obs.emit(|| ObsEvent::LpResolve {
            time: self.now,
            jobs: self.active.iter().map(|a| a.id).collect(),
            shares: self.active.iter().map(|a| a.share).collect(),
        });
    }

    // ------------------------------------------------------------------
    // Crash recovery.
    // ------------------------------------------------------------------

    /// Syncs liveness from the engine and evacuates every active job's
    /// lane on workers that are down *now* (including workers down from
    /// `t = 0`, for which no lifecycle event ever fires).
    fn sync_liveness(&mut self, ctx: &SimCtx) {
        for w in 0..self.platform.len() {
            self.up[w] = ctx.is_up(w);
        }
        for w in 0..self.platform.len() {
            if self.up[w] {
                continue;
            }
            for j in 0..self.active.len() {
                if self.active[j].member.is_dag() {
                    // DAG members never dispatch to a downed worker and
                    // heal their own lanes on WorkerDown.
                    continue;
                }
                let orphans: Vec<PlannedChunk> = self.active[j].member.as_gemm_mut().drain_lane(w);
                for pc in orphans {
                    self.replan(j, pc.geom);
                }
            }
        }
    }

    /// Re-plans a lost region of active job `j` onto the least-loaded
    /// surviving worker that fits it, splitting it into tiles of the
    /// target's partitioned side.
    fn replan(&mut self, j: usize, geom: ChunkGeom) {
        let target = (0..self.platform.len())
            .filter(|&w| self.up[w] && self.active[j].sides[w] > 0)
            .min_by(|&a, &b| {
                let la = self.queued_updates(j, a);
                let lb = self.queued_updates(j, b);
                la.cmp(&lb).then(a.cmp(&b))
            });
        let Some(target) = target else {
            self.active[j].stranded.push(geom);
            return;
        };
        let side = self.active[j].sides[target];
        let job = self.active[j].job;
        let owner_id = self.active[j].id;
        let mut i0 = geom.i0;
        while i0 < geom.i0 + geom.h {
            let h = side.min(geom.i0 + geom.h - i0);
            let mut j0 = geom.j0;
            while j0 < geom.j0 + geom.w {
                let w = side.min(geom.j0 + geom.w - j0);
                let id = self.next_chunk_id;
                self.next_chunk_id += 1;
                let pc = plan_chunk(&job, id, target, i0, j0, h, w, geom.k_depth);
                self.owner.insert(id, owner_id);
                self.active[j].member.as_gemm_mut().enqueue_chunk(pc);
                self.stats.reassigned_chunks += 1;
                j0 += w;
            }
            i0 += h;
        }
    }

    /// Updates queued (not yet opened) on job `j`'s lane `w` — the
    /// load proxy replanning balances against.
    fn queued_updates(&self, j: usize, w: usize) -> u64 {
        self.active[j]
            .member
            .as_gemm()
            .queued_chunks(w)
            .map(|pc| pc.descr.total_updates())
            .sum()
    }

    /// Index of the active job owning `chunk`, if it is active. DAG
    /// chunks carry their owner in the id itself (the namespace slot);
    /// GEMM chunks are looked up in the owner map.
    fn active_index_of(&self, chunk: ChunkId) -> Option<usize> {
        let job = if chunk >= DAG_ID_BASE {
            (chunk - DAG_ID_BASE) / DAG_ID_SPAN
        } else {
            *self.owner.get(&chunk)?
        };
        self.active.iter().position(|a| a.id == job)
    }
}

/// Carves `job` into round-robin column strips over the live workers
/// that fit it, with globally unique chunk ids.
fn carve_queues(
    job: &Job,
    sides: &[usize],
    up: &[bool],
    next_id: &mut ChunkId,
) -> Vec<Vec<PlannedChunk>> {
    let eligible: Vec<usize> = (0..sides.len())
        .filter(|&w| sides[w] > 0 && up[w])
        .collect();
    debug_assert!(!eligible.is_empty(), "admission checked a live host");
    let mut queues = vec![Vec::new(); sides.len()];
    let mut col = 0;
    let mut idx = 0;
    loop {
        let w = eligible[idx % eligible.len()];
        match carve_strip(job, w, sides[w], 1, &mut col, next_id) {
            Some(strip) => queues[w].extend(strip),
            None => break,
        }
        idx += 1;
    }
    queues
}

impl MasterPolicy for MultiJobMaster {
    fn next_action(&mut self, ctx: &SimCtx) -> Action {
        self.now = ctx.now();
        self.sync_liveness(ctx);
        self.admit_ready();
        if self.shares_dirty {
            self.refresh_shares();
        }

        // Deficit order: least port-time-per-share first; job id breaks
        // ties deterministically.
        let mut order: Vec<usize> = (0..self.active.len()).collect();
        order.sort_by(|&a, &b| {
            let ka = self.active[a].port_used / self.active[a].share;
            let kb = self.active[b].port_used / self.active[b].share;
            ka.total_cmp(&kb)
                .then(self.active[a].id.cmp(&self.active[b].id))
        });

        let mut finished: Option<usize> = None;
        for i in order {
            match self.active[i].member.next_action(ctx) {
                Action::Send {
                    worker,
                    fragment,
                    new_chunk,
                } => {
                    debug_assert!(self.up[worker], "member offered a downed lane");
                    debug_assert!(
                        new_chunk
                            .is_none_or(|d| d.id >= DAG_ID_BASE || self.owner.contains_key(&d.id)),
                        "chunk planned without an owner"
                    );
                    let credit = fragment.blocks as f64 * self.platform.worker(worker).c;
                    self.active[i].port_used += credit;
                    self.obs.emit(|| ObsEvent::DeficitCredit {
                        time: self.now,
                        job: self.active[i].id,
                        port_seconds: credit,
                    });
                    return Action::Send {
                        worker,
                        fragment,
                        new_chunk,
                    };
                }
                Action::Retrieve { worker, chunk } => {
                    let blocks = self.active[i]
                        .member
                        .geom(chunk)
                        .map_or(0, |g| (g.h * g.w) as u64);
                    let credit = blocks as f64 * self.platform.worker(worker).c;
                    self.active[i].port_used += credit;
                    self.obs.emit(|| ObsEvent::DeficitCredit {
                        time: self.now,
                        job: self.active[i].id,
                        port_seconds: credit,
                    });
                    return Action::Retrieve { worker, chunk };
                }
                Action::Finished if self.active[i].stranded.is_empty() => {
                    finished = Some(i);
                    break;
                }
                // Stranded regions mean the job is *not* done — it waits
                // for a rejoin like any other blocked lane.
                Action::Finished | Action::Wait => {}
                Action::CompleteJob { .. } => {
                    unreachable!("member masters never manage jobs")
                }
            }
        }

        if let Some(i) = finished {
            let done = self.active.remove(i);
            if let Member::Dag(d) = &done.member {
                self.dag_completions
                    .insert(done.id, d.completion_order().to_vec());
            }
            self.completed.push(done.id);
            self.stats.completed += 1;
            self.shares_dirty = true;
            return Action::CompleteJob { job: done.id };
        }

        if self.completed.len() == self.expected {
            Action::Finished
        } else {
            Action::Wait
        }
    }

    fn on_event(&mut self, ev: &SimEvent, ctx: &SimCtx) {
        self.now = ctx.now();
        match *ev {
            SimEvent::JobArrived { job } => {
                debug_assert!(
                    self.requests.contains_key(&job),
                    "arrival of an unknown job {job}"
                );
                self.backlog.push_back(job);
                self.stats.peak_backlog = self.stats.peak_backlog.max(self.backlog.len());
            }
            SimEvent::JobCompleted { .. } => {} // bookkept at issuance
            SimEvent::SendDone { fragment, .. } => {
                if let Some(i) = self.active_index_of(fragment.chunk) {
                    self.active[i].member.on_event(ev, ctx);
                }
            }
            SimEvent::StepDone { chunk, .. } | SimEvent::ChunkComputed { chunk, .. } => {
                if let Some(i) = self.active_index_of(chunk) {
                    self.active[i].member.on_event(ev, ctx);
                }
            }
            SimEvent::RetrieveDone { chunk, .. } => {
                if let Some(i) = self.active_index_of(chunk) {
                    let id = self.active[i].id;
                    if let Some(g) = self.active[i].member.geom(chunk) {
                        self.retrieved.entry(id).or_default().push(g);
                    }
                    self.active[i].member.on_event(ev, ctx);
                }
            }
            SimEvent::WorkerDown { worker } => {
                self.up[worker] = false;
                for j in 0..self.active.len() {
                    if self.active[j].member.is_dag() {
                        // The DAG member returns its lost tasks to the
                        // ready frontier itself.
                        self.active[j].member.on_event(ev, ctx);
                        continue;
                    }
                    // Unsent chunks survive on the master: re-plan them
                    // right away. The active chunk's loss arrives as its
                    // own ChunkLost event.
                    let gemm = self.active[j].member.as_gemm_mut();
                    let orphans: Vec<PlannedChunk> = gemm.drain_lane(worker);
                    gemm.clear_active(worker);
                    for pc in orphans {
                        self.replan(j, pc.geom);
                    }
                }
                self.shares_dirty = true;
            }
            SimEvent::WorkerUp { worker } => {
                self.up[worker] = true;
                for j in 0..self.active.len() {
                    if self.active[j].member.is_dag() {
                        self.active[j].member.on_event(ev, ctx);
                        continue;
                    }
                    let stranded = std::mem::take(&mut self.active[j].stranded);
                    for geom in stranded {
                        self.replan(j, geom);
                    }
                }
                self.shares_dirty = true;
            }
            SimEvent::ChunkLost { chunk, .. } => {
                let Some(i) = self.active_index_of(chunk) else {
                    return;
                };
                if self.active[i].member.is_dag() {
                    self.active[i].member.on_event(ev, ctx);
                    return;
                }
                let Some(geom) = self.active[i].member.geom(chunk) else {
                    return;
                };
                // If the lost chunk was being streamed, stop feeding it.
                let gemm = self.active[i].member.as_gemm_mut();
                if gemm
                    .active_chunk_on(geom.worker)
                    .is_some_and(|pc| pc.descr.id == chunk)
                {
                    gemm.clear_active(geom.worker);
                }
                self.replan(i, geom);
            }
        }
    }

    fn name(&self) -> &'static str {
        "MultiJobStream"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ArrivalProcess, TenantSpec, WorkloadSpec};
    use stargemm_core::geometry::validate_coverage;
    use stargemm_platform::WorkerSpec;
    use stargemm_sim::Simulator;

    fn platform() -> Platform {
        Platform::new(
            "stream-test",
            vec![
                WorkerSpec::new(0.2, 0.1, 60),
                WorkerSpec::new(0.3, 0.15, 60),
                WorkerSpec::new(0.5, 0.3, 40),
            ],
        )
    }

    fn workload(jobs: usize, seed: u64, mean: f64) -> Vec<JobRequest> {
        WorkloadSpec {
            tenants: vec![
                TenantSpec::new("t0", 1.0, vec![Job::new(4, 3, 6, 2)]),
                TenantSpec::new("t1", 2.0, vec![Job::new(6, 4, 8, 2)]),
            ],
            arrivals: ArrivalProcess::Open {
                mean_interarrival: mean,
            },
            jobs,
            seed,
        }
        .generate()
    }

    fn run_stream(
        platform: &Platform,
        requests: &[JobRequest],
        cfg: StreamConfig,
    ) -> (stargemm_sim::RunStats, MultiJobMaster) {
        let mut policy = MultiJobMaster::new(platform, requests, cfg).unwrap();
        let stats = Simulator::new(platform.clone())
            .with_arrivals(MultiJobMaster::arrival_plan(requests))
            .run(&mut policy)
            .unwrap();
        (stats, policy)
    }

    #[test]
    fn every_job_completes_and_covers_its_c() {
        let reqs = workload(6, 11, 20.0);
        let (stats, policy) = run_stream(&platform(), &reqs, StreamConfig::default());
        assert_eq!(stats.jobs.len(), 6);
        assert!(stats.jobs.iter().all(|j| j.completion.is_some()));
        let total: u64 = reqs.iter().map(|r| r.job.total_updates()).sum();
        assert_eq!(stats.total_updates, total);
        for r in &reqs {
            validate_coverage(&r.job, policy.retrieved_geoms(r.id)).unwrap();
        }
        assert_eq!(policy.stats().admitted, 6);
        assert_eq!(policy.stats().completed, 6);
    }

    #[test]
    fn completions_are_timestamped_after_arrivals() {
        let reqs = workload(5, 3, 15.0);
        let (stats, _) = run_stream(&platform(), &reqs, StreamConfig::default());
        for js in &stats.jobs {
            let req = reqs.iter().find(|r| r.id == js.job).unwrap();
            assert!((js.arrival - req.arrival).abs() < 1e-12);
            assert!(js.completion.unwrap() >= js.arrival);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let reqs = workload(8, 5, 10.0);
        let a = run_stream(&platform(), &reqs, StreamConfig::default()).0;
        let b = run_stream(&platform(), &reqs, StreamConfig::default()).0;
        assert_eq!(a, b);
    }

    #[test]
    fn admission_respects_the_slot_limit_and_memory() {
        // A closed batch of 8 jobs on 2 slots: peak backlog ≥ 6, memory
        // never violated (the engine enforces it strictly — a violation
        // would fail the run).
        let reqs: Vec<JobRequest> = WorkloadSpec {
            tenants: vec![TenantSpec::new("t", 1.0, vec![Job::new(6, 4, 8, 2)])],
            arrivals: ArrivalProcess::ClosedBatch,
            jobs: 8,
            seed: 2,
        }
        .generate();
        let (stats, policy) = run_stream(&platform(), &reqs, StreamConfig::default());
        assert!(policy.stats().peak_backlog >= 6);
        assert_eq!(stats.jobs.len(), 8);
        // Partitioned layout: high-water below each worker's capacity.
        for (w, ws) in stats.per_worker.iter().enumerate() {
            assert!(ws.mem_high_water <= platform().worker(w).m as u64);
        }
    }

    #[test]
    fn higher_weight_tenant_finishes_sooner_under_contention() {
        // Two identical jobs arriving together; tenant weights 1 vs 4.
        // The heavier job must not finish later.
        let job = Job::new(6, 5, 12, 2);
        let reqs = vec![
            JobRequest {
                id: 0,
                tenant: 0,
                weight: 1.0,
                job,
                arrival: 0.0,
            },
            JobRequest {
                id: 1,
                tenant: 1,
                weight: 4.0,
                job,
                arrival: 0.0,
            },
        ];
        let (stats, _) = run_stream(&platform(), &reqs, StreamConfig::default());
        let done = |id: u32| {
            stats
                .jobs
                .iter()
                .find(|j| j.job == id)
                .unwrap()
                .completion
                .unwrap()
        };
        assert!(
            done(1) <= done(0) + 1e-9,
            "weighted job finished later: {} vs {}",
            done(1),
            done(0)
        );
    }

    #[test]
    fn infeasible_job_is_rejected_up_front() {
        let tiny = Platform::new("tiny", vec![WorkerSpec::new(1.0, 1.0, 8)]);
        // m/slots = 4 → μ = 0 with window 2: no worker fits.
        let reqs = vec![JobRequest {
            id: 0,
            tenant: 0,
            weight: 1.0,
            job: Job::new(4, 3, 4, 2),
            arrival: 0.0,
        }];
        let err = match MultiJobMaster::new(&tiny, &reqs, StreamConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("tiny platform must be infeasible"),
        };
        assert_eq!(err, StreamError::Infeasible { job: 0 });
        assert!(err.to_string().contains("job 0"));
    }

    fn lu_request(id: u32, q: usize, arrival: f64) -> (JobRequest, (JobId, DagJob)) {
        let (dag, _) = stargemm_dag::lu_dag(3);
        let job = dag.virtual_job(q);
        (
            JobRequest {
                id,
                tenant: 0,
                weight: 1.0,
                job,
                arrival,
            },
            (id, dag),
        )
    }

    #[test]
    fn mixed_dag_and_gemm_stream_completes() {
        let platform = platform();
        let mut reqs = workload(3, 7, 12.0);
        let (dag_req, pair) = lu_request(100, 2, 5.0);
        reqs.push(dag_req);
        let mut policy =
            MultiJobMaster::with_dags(&platform, &reqs, vec![pair], StreamConfig::default())
                .unwrap();
        let stats = Simulator::new(platform.clone())
            .with_arrivals(MultiJobMaster::arrival_plan(&reqs))
            .run(&mut policy)
            .unwrap();
        assert_eq!(stats.jobs.len(), 4);
        assert!(stats.jobs.iter().all(|j| j.completion.is_some()));
        // GEMM members still tile their jobs exactly.
        for r in &reqs {
            validate_coverage(&r.job, policy.retrieved_geoms(r.id)).unwrap();
        }
        // The DAG member finished every task in a dependency-respecting
        // order.
        let order = policy.dag_completion_order(100);
        let dag = policy.dag_spec(100).unwrap();
        assert!(dag.is_topological(order), "{order:?}");
    }

    #[test]
    fn mixed_stream_is_deterministic() {
        let platform = platform();
        let mut reqs = workload(4, 13, 8.0);
        let (dag_req, pair) = lu_request(200, 2, 0.0);
        reqs.push(dag_req);
        let go = || {
            let mut policy = MultiJobMaster::with_dags(
                &platform,
                &reqs,
                vec![pair.clone()],
                StreamConfig::default(),
            )
            .unwrap();
            let stats = Simulator::new(platform.clone())
                .with_arrivals(MultiJobMaster::arrival_plan(&reqs))
                .run(&mut policy)
                .unwrap();
            let order = policy.dag_completion_order(200).to_vec();
            (stats, order)
        };
        let (a, oa) = go();
        let (b, ob) = go();
        assert_eq!(a, b);
        assert_eq!(oa, ob);
    }

    #[test]
    fn dag_job_survives_a_worker_crash() {
        use stargemm_platform::{DynProfile, Trace, WorkerDyn};
        let platform = platform();
        let (dag_req, pair) = lu_request(7, 2, 0.0);
        let reqs = vec![dag_req];
        let mut policy =
            MultiJobMaster::with_dags(&platform, &reqs, vec![pair], StreamConfig::default())
                .unwrap();
        let profile = DynProfile::new(vec![
            WorkerDyn::new(
                Trace::default(),
                Trace::default(),
                vec![(2.0, f64::INFINITY)],
            ),
            WorkerDyn::stable(),
            WorkerDyn::stable(),
        ]);
        let stats = Simulator::new(platform.clone())
            .with_arrivals(MultiJobMaster::arrival_plan(&reqs))
            .with_profile(profile)
            .run(&mut policy)
            .unwrap();
        assert_eq!(stats.jobs.len(), 1);
        assert!(stats.jobs[0].completion.is_some());
        let order = policy.dag_completion_order(7);
        let dag = policy.dag_spec(7).unwrap();
        assert_eq!(order.len(), dag.len());
        assert!(dag.is_topological(order), "{order:?}");
    }

    #[test]
    fn infeasible_dag_task_is_rejected_up_front() {
        // Widest worker slice is 60/2 = 30 buffers; a width-15 task
        // needs 31 — infeasible under 2 slots.
        let chain = DagJob::chain("wide", &[15]);
        let job = chain.virtual_job(2);
        let reqs = vec![JobRequest {
            id: 0,
            tenant: 0,
            weight: 1.0,
            job,
            arrival: 0.0,
        }];
        let err = MultiJobMaster::with_dags(
            &platform(),
            &reqs,
            vec![(0, chain)],
            StreamConfig::default(),
        )
        .err()
        .expect("wide task must not fit");
        assert_eq!(err, StreamError::Infeasible { job: 0 });
    }

    #[test]
    fn slot_caps_assign_the_remainder_to_low_slots() {
        // 61 blocks over 2 slots: 31 + 30, nothing stranded.
        assert_eq!(slot_cap(61, 2, 0), 31);
        assert_eq!(slot_cap(61, 2, 1), 30);
        // Any (m, slots): caps are non-increasing and sum to m exactly.
        for m in 0..40 {
            for slots in 1..6 {
                let caps: Vec<usize> = (0..slots).map(|s| slot_cap(m, slots, s)).collect();
                assert_eq!(caps.iter().sum::<usize>(), m, "m={m} slots={slots}");
                assert!(caps.windows(2).all(|w| w[0] >= w[1]), "m={m} slots={slots}");
            }
        }
    }

    #[test]
    fn odd_memory_worker_is_rescued_by_the_remainder_block() {
        // m = 9, slots = 2, window = 2: the old integer division gave
        // every slot cap 4 → μ = 0, rejecting the job outright. The
        // fixed split gives slot 0 cap 5 → μ = 1: feasible, and the run
        // completes within the 9-block budget.
        let odd = Platform::new("odd", vec![WorkerSpec::new(1.0, 1.0, 9)]);
        let reqs = vec![JobRequest {
            id: 0,
            tenant: 0,
            weight: 1.0,
            job: Job::new(2, 2, 2, 2),
            arrival: 0.0,
        }];
        let (stats, policy) = run_stream(&odd, &reqs, StreamConfig::default());
        assert_eq!(stats.jobs.len(), 1);
        assert!(stats.jobs[0].completion.is_some());
        assert_eq!(policy.stats().completed, 1);
        assert!(stats.per_worker[0].mem_high_water <= 9);
        validate_coverage(&reqs[0].job, policy.retrieved_geoms(0)).unwrap();
    }

    #[test]
    fn odd_memory_platform_never_overflows_under_contention() {
        // Two concurrent jobs on odd-memory workers: slot 0 gets the
        // extra block, slot 1 the floor, and Σ caps = m keeps the
        // engine's strict memory check green.
        let odd = Platform::new(
            "odd2",
            vec![
                WorkerSpec::new(0.2, 0.1, 61),
                WorkerSpec::new(0.3, 0.15, 41),
            ],
        );
        let reqs = workload(6, 17, 5.0);
        let (stats, policy) = run_stream(&odd, &reqs, StreamConfig::default());
        assert_eq!(stats.jobs.len(), 6);
        assert!(stats.jobs.iter().all(|j| j.completion.is_some()));
        assert_eq!(policy.stats().completed, 6);
        assert!(stats.per_worker[0].mem_high_water <= 61);
        assert!(stats.per_worker[1].mem_high_water <= 41);
    }

    #[test]
    fn bad_configs_are_typed_errors() {
        let reqs = workload(1, 1, 1.0);
        let no_slots = StreamConfig {
            slots: 0,
            window: 2,
        };
        match MultiJobMaster::new(&platform(), &reqs, no_slots).err() {
            Some(StreamError::Config(msg)) => assert!(msg.contains("slot")),
            other => panic!("expected Config error, got {other:?}"),
        }
        let no_window = StreamConfig {
            slots: 2,
            window: 0,
        };
        match MultiJobMaster::new(&platform(), &reqs, no_window).err() {
            Some(StreamError::Config(msg)) => assert!(msg.contains("window")),
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_job_ids_are_rejected() {
        let mut reqs = workload(2, 1, 1.0);
        reqs[1].id = reqs[0].id;
        let err = MultiJobMaster::new(&platform(), &reqs, StreamConfig::default())
            .err()
            .expect("duplicate ids must be rejected");
        assert_eq!(err, StreamError::DuplicateJob { job: reqs[0].id });
    }

    #[test]
    fn dag_for_unknown_job_is_rejected() {
        let reqs = workload(1, 1, 1.0);
        let (dag, _) = stargemm_dag::lu_dag(2);
        let err = MultiJobMaster::with_dags(
            &platform(),
            &reqs,
            vec![(999, dag)],
            StreamConfig::default(),
        )
        .err()
        .expect("dangling DAG must be rejected");
        assert_eq!(err, StreamError::UnknownDagJob { job: 999 });
    }

    #[test]
    fn duplicate_dags_are_rejected() {
        let (req, (id, dag)) = lu_request(5, 2, 0.0);
        let err = MultiJobMaster::with_dags(
            &platform(),
            &[req],
            vec![(id, dag.clone()), (id, dag)],
            StreamConfig::default(),
        )
        .err()
        .expect("duplicate DAG must be rejected");
        assert_eq!(err, StreamError::DuplicateDag { job: id });
    }

    #[test]
    fn dag_id_overflow_is_rejected() {
        let big = (ChunkId::MAX - DAG_ID_BASE) / DAG_ID_SPAN;
        let (dag, _) = stargemm_dag::lu_dag(2);
        let job = dag.virtual_job(2);
        let reqs = vec![JobRequest {
            id: big,
            tenant: 0,
            weight: 1.0,
            job,
            arrival: 0.0,
        }];
        let err = MultiJobMaster::with_dags(
            &platform(),
            &reqs,
            vec![(big, dag)],
            StreamConfig::default(),
        )
        .err()
        .expect("oversized DAG id must be rejected");
        assert_eq!(err, StreamError::DagIdOverflow { job: big });
    }

    #[test]
    fn dag_dimension_mismatch_is_rejected() {
        let (dag, _) = stargemm_dag::lu_dag(3);
        // Wrong r/t/s for the DAG's virtual GEMM at q = 2.
        let reqs = vec![JobRequest {
            id: 4,
            tenant: 0,
            weight: 1.0,
            job: Job::new(1, 1, 1, 2),
            arrival: 0.0,
        }];
        let err =
            MultiJobMaster::with_dags(&platform(), &reqs, vec![(4, dag)], StreamConfig::default())
                .err()
                .expect("mismatched DAG job must be rejected");
        assert_eq!(err, StreamError::DagMismatch { job: 4 });
    }

    #[test]
    fn single_slot_serializes_jobs() {
        let reqs = workload(4, 9, 1.0);
        let cfg = StreamConfig {
            slots: 1,
            window: 2,
        };
        let (stats, policy) = run_stream(&platform(), &reqs, cfg);
        assert_eq!(stats.jobs.len(), 4);
        assert!(stats.jobs.iter().all(|j| j.completion.is_some()));
        assert_eq!(policy.stats().completed, 4);
    }
}
