//! The federated stream master: one root placing jobs across `k`
//! regional stars.
//!
//! [`MultiStarMaster`] sits on top of a [`FedPlatform`]: the root
//! receives the job stream, places each job on a regional star in
//! proportion to the stars' steady-state LP throughput (least *relative*
//! load first — the share-weighted water level of
//! `stargemm_core::steady`), ships the job's operands over the owning
//! star's uplink (store-and-forward: the uplink serializes its feeds,
//! and the root opens at most `capacity()` uplink transfers at once
//! under its `stargemm_netmodel::NetModelSpec`), and lets each star's
//! own [`MultiJobMaster`] time-share its workers locally. Worker
//! crashes are recovered by the owning star's master alone — no other
//! star observes them, which the tests pin.
//!
//! With `k = 1` the root and the regional master coincide: nothing
//! crosses an uplink, every job arrives at its original time, and the
//! run is **bitwise identical** to driving [`MultiJobMaster`] on the
//! star directly (pinned by tests). The `exp_fed` sweep of
//! `stargemm-bench` compares this composition against the hierarchical
//! LP bound (`stargemm_core::steady::federated_lp`) — no cell may beat
//! the bound, and with fast uplinks a `k ≥ 2` federation beats any
//! single star's one-port ceiling.

use stargemm_core::steady::bandwidth_centric;
use stargemm_core::Job;
use stargemm_obs::ObsEvent;
use stargemm_platform::FedPlatform;
use stargemm_sim::{JobId, ObsSink, RunRecorder, RunStats, SimError, Simulator};

use crate::multi::{MultiJobMaster, StreamConfig, StreamError, StreamStats};
use crate::workload::JobRequest;

/// Why a federated stream run failed.
#[derive(Debug)]
pub enum FedStreamError {
    /// A star's member master rejected its job subset.
    Stream(StreamError),
    /// A star's simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for FedStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FedStreamError::Stream(e) => write!(f, "federated stream: {e}"),
            FedStreamError::Sim(e) => write!(f, "federated sim: {e}"),
        }
    }
}

impl std::error::Error for FedStreamError {}

impl From<StreamError> for FedStreamError {
    fn from(e: StreamError) -> Self {
        FedStreamError::Stream(e)
    }
}

impl From<SimError> for FedStreamError {
    fn from(e: SimError) -> Self {
        FedStreamError::Sim(e)
    }
}

/// Outcome of one federated stream run.
#[derive(Clone, Debug, PartialEq)]
pub struct FedStreamRun {
    /// Which star each request was placed on, in request order.
    pub placement: Vec<(JobId, usize)>,
    /// When each job's operand feed lands at its regional master, in
    /// request order (the original arrival time for `k = 1`).
    pub feed_arrivals: Vec<(JobId, f64)>,
    /// Per-star run statistics. Arrivals were fed in root-clock time,
    /// so every star's makespan is already on the shared clock.
    pub stars: Vec<RunStats>,
    /// Per-star stream counters (admissions, completions, replans).
    pub stream_stats: Vec<StreamStats>,
    /// Federated makespan: the latest star completion.
    pub makespan: f64,
}

impl FedStreamRun {
    /// Total block updates across all stars.
    pub fn total_updates(&self) -> u64 {
        self.stars.iter().map(|s| s.total_updates).sum()
    }

    /// Aggregate throughput over the federated makespan.
    pub fn throughput(&self) -> f64 {
        self.total_updates() as f64 / self.makespan
    }
}

/// Operand footprint of a job in blocks — what the root must ship to
/// the owning star before the job can start there (A, B and the C
/// panel).
pub fn job_volume(job: &Job) -> f64 {
    (job.r * job.t + job.t * job.s + job.r * job.s) as f64
}

/// The root master of a federated stream: placement + uplink feeds +
/// one [`MultiJobMaster`] per star.
pub struct MultiStarMaster {
    fed: FedPlatform,
    cfg: StreamConfig,
}

impl MultiStarMaster {
    /// A root master over `fed` with per-star stream tuning `cfg`.
    pub fn new(fed: FedPlatform, cfg: StreamConfig) -> Self {
        assert!(!fed.is_empty(), "a federation needs at least one star");
        MultiStarMaster { fed, cfg }
    }

    /// The platform being driven.
    pub fn fed(&self) -> &FedPlatform {
        &self.fed
    }

    /// Places each request on a star: greedy least-relative-load, where
    /// a star's load is its assigned updates divided by its
    /// steady-state LP throughput for the job's shape
    /// ([`bandwidth_centric`] — the per-star Table 1 share). Stars that
    /// fit the job at all are preferred; ties break on the lowest star
    /// index, so placement is deterministic.
    pub fn place(&self, requests: &[JobRequest]) -> Vec<usize> {
        let k = self.fed.len();
        let mut load = vec![0.0f64; k];
        requests
            .iter()
            .map(|r| {
                let updates = r.job.total_updates() as f64;
                let best = (0..k)
                    .filter_map(|s| {
                        let base = &self.fed.star(s).platform.base;
                        let rho = bandwidth_centric(base, r.job.r).throughput;
                        if rho <= 0.0 {
                            return None;
                        }
                        Some((s, (load[s] + updates) / rho))
                    })
                    .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                    .map(|(s, _)| s)
                    .unwrap_or(0);
                load[best] += updates;
                best
            })
            .collect()
    }

    /// When each request's operand feed lands at its star, given a
    /// `placement`: the owning star's uplink serializes its feeds in
    /// arrival order, and the root opens at most
    /// `fed.uplink.capacity()` transfers at once. For `k = 1` nothing
    /// crosses a wire and every job keeps its original arrival time.
    pub fn feed_arrivals(&self, requests: &[JobRequest], placement: &[usize]) -> Vec<f64> {
        assert_eq!(placement.len(), requests.len(), "one star per request");
        if self.fed.len() == 1 {
            return requests.iter().map(|r| r.arrival).collect();
        }
        // Requests are processed in arrival order (stable on ties), but
        // the result is reported in request order.
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| requests[a].arrival.total_cmp(&requests[b].arrival));
        let ports = self.fed.uplink.capacity().min(order.len().max(1));
        let mut root_free = vec![0.0f64; ports];
        let mut uplink_free = vec![0.0f64; self.fed.len()];
        let mut arrivals = vec![0.0f64; requests.len()];
        for &i in &order {
            let star = placement[i];
            let dur = job_volume(&requests[i].job) * self.fed.star(star).uplink_c;
            let port = (0..ports)
                .min_by(|&a, &b| root_free[a].total_cmp(&root_free[b]).then(a.cmp(&b)))
                .expect("at least one root port");
            let start = requests[i]
                .arrival
                .max(root_free[port])
                .max(uplink_free[star]);
            let end = start + dur;
            root_free[port] = end;
            uplink_free[star] = end;
            arrivals[i] = end;
        }
        arrivals
    }

    /// Runs the whole federated stream: place, feed, then one
    /// [`MultiJobMaster`] simulation per star (each on its own
    /// [`Simulator`], with its own dynamic profile — a crash on one
    /// star is invisible to every other). Arrivals are fed in
    /// root-clock time, so per-star stats share one clock.
    ///
    /// With `k = 1` this is bitwise the single-star stream run.
    pub fn run(&self, requests: &[JobRequest]) -> Result<FedStreamRun, FedStreamError> {
        let placement = self.place(requests);
        let arrivals = self.feed_arrivals(requests, &placement);
        let mut stars = Vec::with_capacity(self.fed.len());
        let mut stream_stats = Vec::with_capacity(self.fed.len());
        for s in 0..self.fed.len() {
            // The star sees its own subset, arriving when the feed lands.
            let local: Vec<JobRequest> = requests
                .iter()
                .zip(&placement)
                .zip(&arrivals)
                .filter(|((_, &p), _)| p == s)
                .map(|((r, _), &at)| JobRequest { arrival: at, ..*r })
                .collect();
            let star = self.fed.star(s);
            let mut policy = MultiJobMaster::new(&star.platform.base, &local, self.cfg)?;
            let stats = Simulator::new_dyn(star.platform.clone())
                .with_arrivals(MultiJobMaster::arrival_plan(&local))
                .run(&mut policy)?;
            stream_stats.push(policy.stats());
            stars.push(stats);
        }
        let makespan = stars.iter().map(|s| s.makespan).fold(0.0f64, f64::max);
        Ok(FedStreamRun {
            placement: requests.iter().map(|r| r.id).zip(placement).collect(),
            feed_arrivals: requests.iter().map(|r| r.id).zip(arrivals).collect(),
            stars,
            stream_stats,
            makespan,
        })
    }

    /// [`MultiStarMaster::run`] with a recorder attached to every
    /// star's simulation. Returns the run alongside one structured
    /// event log per star; each log additionally carries synthesized
    /// [`ObsEvent::UplinkAcquire`]/[`ObsEvent::UplinkRelease`] spans
    /// for the star's operand feeds (none at `k = 1`, where nothing
    /// crosses a wire), so post-run attribution can see uplink
    /// serialization next to the star's local port and compute
    /// timeline. The schedule is identical to the unrecorded run —
    /// observation only.
    pub fn run_recorded(
        &self,
        requests: &[JobRequest],
    ) -> Result<(FedStreamRun, Vec<Vec<ObsEvent>>), FedStreamError> {
        let placement = self.place(requests);
        let arrivals = self.feed_arrivals(requests, &placement);
        let mut stars = Vec::with_capacity(self.fed.len());
        let mut stream_stats = Vec::with_capacity(self.fed.len());
        let mut logs: Vec<Vec<ObsEvent>> = Vec::with_capacity(self.fed.len());
        for s in 0..self.fed.len() {
            let local: Vec<JobRequest> = requests
                .iter()
                .zip(&placement)
                .zip(&arrivals)
                .filter(|((_, &p), _)| p == s)
                .map(|((r, _), &at)| JobRequest { arrival: at, ..*r })
                .collect();
            let star = self.fed.star(s);
            let rec = RunRecorder::shared();
            let obs = ObsSink::to(rec.clone());
            let mut policy =
                MultiJobMaster::new(&star.platform.base, &local, self.cfg)?.with_obs(obs.clone());
            let stats = Simulator::new_dyn(star.platform.clone())
                .with_arrivals(MultiJobMaster::arrival_plan(&local))
                .run_observed(&mut policy, obs)?;
            stream_stats.push(policy.stats());
            stars.push(stats);
            // The policy still holds its sink clone; release it so the
            // recorder is back to a single owner.
            drop(policy);
            let Ok(rec) = std::rc::Rc::try_unwrap(rec) else {
                unreachable!("recorder has one owner after the run")
            };
            let (mut events, _) = rec.into_inner().into_parts();
            if self.fed.len() > 1 {
                for ((r, &p), &at) in requests.iter().zip(&placement).zip(&arrivals) {
                    if p != s {
                        continue;
                    }
                    let volume = job_volume(&r.job);
                    let dur = volume * star.uplink_c;
                    let blocks = volume as u64;
                    events.push(ObsEvent::UplinkAcquire {
                        time: at - dur,
                        star: s,
                        job: r.id,
                        blocks,
                    });
                    events.push(ObsEvent::UplinkRelease {
                        time: at,
                        star: s,
                        job: r.id,
                        blocks,
                    });
                }
                // Stable by time: engine events are already ordered, and
                // same-instant pairs keep their emission order.
                events.sort_by(|a, b| a.time().total_cmp(&b.time()));
            }
            logs.push(events);
        }
        let makespan = stars.iter().map(|s| s.makespan).fold(0.0f64, f64::max);
        Ok((
            FedStreamRun {
                placement: requests.iter().map(|r| r.id).zip(placement).collect(),
                feed_arrivals: requests.iter().map(|r| r.id).zip(arrivals).collect(),
                stars,
                stream_stats,
                makespan,
            },
            logs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ArrivalProcess, TenantSpec, WorkloadSpec};
    use stargemm_platform::{
        DynPlatform, DynProfile, FedStar, Platform, Trace, WorkerDyn, WorkerSpec,
    };
    use stargemm_sim::NetModelSpec;

    fn star_platform() -> Platform {
        Platform::new(
            "star",
            vec![
                WorkerSpec::new(0.2, 0.1, 60),
                WorkerSpec::new(0.3, 0.15, 60),
                WorkerSpec::new(0.5, 0.3, 40),
            ],
        )
    }

    fn workload(jobs: usize, seed: u64, mean: f64) -> Vec<JobRequest> {
        WorkloadSpec {
            tenants: vec![
                TenantSpec::new("t0", 1.0, vec![Job::new(4, 3, 6, 2)]),
                TenantSpec::new("t1", 2.0, vec![Job::new(6, 4, 8, 2)]),
            ],
            arrivals: if mean > 0.0 {
                ArrivalProcess::Open {
                    mean_interarrival: mean,
                }
            } else {
                ArrivalProcess::ClosedBatch
            },
            jobs,
            seed,
        }
        .generate()
    }

    fn two_star_fed(uplink_c: f64) -> FedPlatform {
        FedPlatform::new(
            "fed2",
            vec![
                FedStar::new(DynPlatform::constant(star_platform()), uplink_c),
                FedStar::new(DynPlatform::constant(star_platform()), uplink_c),
            ],
            NetModelSpec::OnePort,
        )
    }

    #[test]
    fn single_star_run_is_bitwise_the_multi_job_master() {
        let reqs = workload(5, 11, 10.0);
        let fed = FedPlatform::single(DynPlatform::constant(star_platform()));
        let root = MultiStarMaster::new(fed, StreamConfig::default());
        let run = root.run(&reqs).unwrap();
        assert!(run.placement.iter().all(|&(_, s)| s == 0));
        // Feeds keep the original arrival times: nothing crossed a wire.
        for (r, &(id, at)) in reqs.iter().zip(&run.feed_arrivals) {
            assert_eq!(r.id, id);
            assert_eq!(at.to_bits(), r.arrival.to_bits());
        }

        let mut solo =
            MultiJobMaster::new(&star_platform(), &reqs, StreamConfig::default()).unwrap();
        let stats = Simulator::new(star_platform())
            .with_arrivals(MultiJobMaster::arrival_plan(&reqs))
            .run(&mut solo)
            .unwrap();
        // Bitwise: RunStats is PartialEq over every field.
        assert_eq!(run.stars[0], stats);
        assert_eq!(run.makespan.to_bits(), stats.makespan.to_bits());
    }

    #[test]
    fn identical_stars_split_the_stream_evenly() {
        let reqs = workload(6, 3, 0.0);
        let root = MultiStarMaster::new(two_star_fed(0.01), StreamConfig::default());
        let placement = root.place(&reqs);
        // Greedy relative load balances equal stars by *updates*, not
        // job count: both stars get work, and their assigned loads
        // differ by at most one job.
        let load = |star: usize| -> u64 {
            reqs.iter()
                .zip(&placement)
                .filter(|(_, &s)| s == star)
                .map(|(r, _)| r.job.total_updates())
                .sum()
        };
        let biggest = reqs.iter().map(|r| r.job.total_updates()).max().unwrap();
        assert!(placement.contains(&0));
        assert!(placement.contains(&1));
        assert!(load(0).abs_diff(load(1)) <= biggest);
        let run = root.run(&reqs).unwrap();
        assert_eq!(run.stars[0].jobs.len() + run.stars[1].jobs.len(), 6);
        assert!(run
            .stars
            .iter()
            .all(|s| s.jobs.iter().all(|j| j.completion.is_some())));
        let total: u64 = reqs.iter().map(|r| r.job.total_updates()).sum();
        assert_eq!(run.total_updates(), total);
    }

    #[test]
    fn uplink_feeds_serialize_per_star_and_root() {
        let reqs = workload(4, 7, 0.0);
        let root = MultiStarMaster::new(two_star_fed(1.0), StreamConfig::default());
        let placement = root.place(&reqs);
        let arr = root.feed_arrivals(&reqs, &placement);
        // Every feed lands strictly after its arrival (volumes > 0) and
        // feeds of the same star never overlap: sorted by landing time,
        // consecutive same-star feeds are at least a volume apart.
        for (r, &at) in reqs.iter().zip(&arr) {
            assert!(at >= r.arrival + job_volume(&r.job) * 1.0 - 1e-9);
        }
        // The one-port root serializes everything: total wire time
        // equals the last landing.
        let total_wire: f64 = reqs.iter().map(|r| job_volume(&r.job)).sum();
        let last = arr.iter().cloned().fold(0.0f64, f64::max);
        assert!((last - total_wire).abs() < 1e-9, "{last} vs {total_wire}");
    }

    #[test]
    fn crashes_are_confined_to_the_owning_star() {
        let reqs = workload(6, 5, 4.0);
        // Star 1's worker 1 dies at t = 30 and never returns; star 0 is
        // untouched.
        let crash = DynProfile::new(vec![
            WorkerDyn::stable(),
            WorkerDyn::new(
                Trace::default(),
                Trace::default(),
                vec![(30.0, f64::INFINITY)],
            ),
            WorkerDyn::stable(),
        ]);
        let healthy = two_star_fed(0.05);
        let wounded = FedPlatform::new(
            "fed2",
            vec![
                FedStar::new(DynPlatform::constant(star_platform()), 0.05),
                FedStar::new(DynPlatform::new(star_platform(), crash), 0.05),
            ],
            NetModelSpec::OnePort,
        );
        let cfg = StreamConfig::default();
        let a = MultiStarMaster::new(healthy, cfg).run(&reqs).unwrap();
        let b = MultiStarMaster::new(wounded, cfg).run(&reqs).unwrap();
        // Identical placement and feeds (placement ignores dynamics),
        // and star 0's run is bitwise untouched by star 1's crash.
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.feed_arrivals, b.feed_arrivals);
        assert_eq!(a.stars[0], b.stars[0]);
        // The wounded star still completes everything via survivors.
        assert!(b.stars[1].jobs.iter().all(|j| j.completion.is_some()));
        assert!(b.stream_stats[1].reassigned_chunks >= 1 || b.stars[1].jobs.is_empty());
    }
}
