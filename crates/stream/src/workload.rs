//! Seeded multi-tenant job-stream generators.
//!
//! A workload is a list of tenants (each with a fairness weight and a
//! set of job shapes it submits) plus an arrival process. Generation is
//! a pure function of the seed — an experiment run twice sees the same
//! stream, mirroring the Figure-7 random-platform generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stargemm_core::Job;
use stargemm_sim::JobId;

/// One tenant of the multi-tenant workload.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (carried into reports).
    pub name: String,
    /// Max-min fairness weight (relative service share under
    /// saturation); must be positive and finite.
    pub weight: f64,
    /// Job shapes this tenant submits, sampled uniformly per arrival.
    pub shapes: Vec<Job>,
}

impl TenantSpec {
    /// A tenant submitting the given shapes with the given weight.
    ///
    /// # Panics
    /// Panics on a non-positive weight or an empty shape list.
    pub fn new(name: impl Into<String>, weight: f64, shapes: Vec<Job>) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "tenant weight must be positive"
        );
        assert!(!shapes.is_empty(), "a tenant needs at least one job shape");
        TenantSpec {
            name: name.into(),
            weight,
            shapes,
        }
    }
}

/// How jobs enter the system.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Open system: exponential (Poisson-like) inter-arrival times with
    /// the given mean, in model seconds.
    Open {
        /// Mean inter-arrival time (must be positive and finite).
        mean_interarrival: f64,
    },
    /// Closed batch: every job is present at `t = 0` — the makespan
    /// regime, many tenants contending from the start.
    ClosedBatch,
}

/// Whole-workload description; [`WorkloadSpec::generate`] turns it into
/// a concrete job stream.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// The tenants sharing the platform (jobs pick a tenant uniformly).
    pub tenants: Vec<TenantSpec>,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Total number of jobs in the stream.
    pub jobs: usize,
    /// RNG seed; same seed, same stream.
    pub seed: u64,
}

/// One generated job request, ready to feed the engine and the policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobRequest {
    /// Engine-level job id (dense, `0..jobs`).
    pub id: JobId,
    /// Index into the workload's tenant list.
    pub tenant: usize,
    /// The owning tenant's fairness weight.
    pub weight: f64,
    /// Problem dimensions.
    pub job: Job,
    /// Model time the job enters the system.
    pub arrival: f64,
}

impl WorkloadSpec {
    /// Generates the job stream, sorted by arrival time.
    ///
    /// # Panics
    /// Panics on an empty tenant list, zero jobs, or a non-positive mean
    /// inter-arrival time.
    pub fn generate(&self) -> Vec<JobRequest> {
        assert!(!self.tenants.is_empty(), "workload needs tenants");
        assert!(self.jobs > 0, "workload needs at least one job");
        if let ArrivalProcess::Open { mean_interarrival } = self.arrivals {
            assert!(
                mean_interarrival.is_finite() && mean_interarrival > 0.0,
                "mean inter-arrival time must be positive"
            );
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut clock = 0.0f64;
        (0..self.jobs)
            .map(|i| {
                let tenant = rng.random_range(0..self.tenants.len());
                let t = &self.tenants[tenant];
                let job = t.shapes[rng.random_range(0..t.shapes.len())];
                let arrival = match self.arrivals {
                    ArrivalProcess::ClosedBatch => 0.0,
                    ArrivalProcess::Open { mean_interarrival } => {
                        // Inverse-CDF exponential draw; `1 - u ∈ (0, 1]`
                        // keeps the logarithm finite.
                        let u: f64 = rng.random();
                        clock += -mean_interarrival * (1.0 - u).ln();
                        clock
                    }
                };
                JobRequest {
                    id: i as JobId,
                    tenant,
                    weight: t.weight,
                    job,
                    arrival,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(arrivals: ArrivalProcess, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            tenants: vec![
                TenantSpec::new("small", 1.0, vec![Job::new(4, 3, 6, 2)]),
                TenantSpec::new(
                    "large",
                    3.0,
                    vec![Job::new(8, 6, 12, 2), Job::new(6, 6, 6, 2)],
                ),
            ],
            arrivals,
            jobs: 40,
            seed,
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mean = ArrivalProcess::Open {
            mean_interarrival: 5.0,
        };
        assert_eq!(spec(mean, 7).generate(), spec(mean, 7).generate());
        assert_ne!(spec(mean, 7).generate(), spec(mean, 8).generate());
    }

    #[test]
    fn open_arrivals_are_sorted_and_positive_on_average() {
        let reqs = spec(
            ArrivalProcess::Open {
                mean_interarrival: 5.0,
            },
            1,
        )
        .generate();
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let last = reqs.last().unwrap().arrival;
        // 40 draws of mean 5: the end of the stream is far from zero.
        assert!(last > 40.0, "{last}");
        // Ids are dense and in order.
        assert!(reqs.iter().enumerate().all(|(i, r)| r.id == i as u32));
    }

    #[test]
    fn closed_batch_arrives_at_zero() {
        let reqs = spec(ArrivalProcess::ClosedBatch, 1).generate();
        assert!(reqs.iter().all(|r| r.arrival == 0.0));
    }

    #[test]
    fn weights_follow_the_owning_tenant() {
        let reqs = spec(ArrivalProcess::ClosedBatch, 3).generate();
        assert!(reqs
            .iter()
            .all(|r| (r.tenant == 0 && r.weight == 1.0) || (r.tenant == 1 && r.weight == 3.0)));
        // Both tenants appear in a 40-job draw.
        assert!(reqs.iter().any(|r| r.tenant == 0));
        assert!(reqs.iter().any(|r| r.tenant == 1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_is_rejected() {
        TenantSpec::new("bad", 0.0, vec![Job::new(1, 1, 1, 1)]);
    }
}
