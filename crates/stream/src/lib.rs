//! Multi-tenant job streams: online multi-job scheduling over the
//! shared star.
//!
//! The paper schedules **one** matrix product on the heterogeneous
//! master-worker star. This crate lets many independent GEMM jobs share
//! one platform under online arrivals:
//!
//! * [`workload`] — seeded open (Poisson-like) and closed-batch
//!   job-arrival generators with mixed job shapes and per-tenant
//!   fairness weights;
//! * [`allocator`] — the steady-state LP of `core::steady` extended to
//!   *weighted max-min* throughput across concurrent jobs (solved with
//!   `stargemm-lp`'s simplex), yielding per-job port shares;
//! * [`multi`] — [`multi::MultiJobMaster`], a
//!   [`MasterPolicy`](stargemm_sim::MasterPolicy) that time-shares the
//!   one-port star between admitted jobs (deficit scheduling against the
//!   LP shares), keeps a FIFO admission backlog, statically partitions
//!   each worker's memory between job slots, recovers chunks lost to
//!   worker crashes on dynamic platforms, and admits DAG-structured jobs
//!   (`stargemm-dag`) as ready-frontier members next to plain GEMM
//!   tenants ([`multi::MultiJobMaster::with_dags`]);
//! * [`metrics`] — per-job response time and slowdown against a solo
//!   baseline, quantiles, and the aggregate steady-state throughput
//!   bound no schedule can beat.
//!
//! The `exp_stream` binary of `stargemm-bench` sweeps load factor ×
//! tenant mix × platform over this machinery.

pub mod allocator;
pub mod fed;
pub mod metrics;
pub mod multi;
pub mod workload;

pub use allocator::{weighted_maxmin, JobDemand, MultiJobAllocation};
pub use fed::{job_volume, FedStreamError, FedStreamRun, MultiStarMaster};
pub use metrics::{
    aggregate_throughput_bound, solo_makespan, stream_report, StreamReport, TenantReport,
};
pub use multi::{MultiJobMaster, StreamConfig, StreamError, DAG_ID_BASE, DAG_ID_SPAN};
pub use workload::{ArrivalProcess, JobRequest, TenantSpec, WorkloadSpec};
