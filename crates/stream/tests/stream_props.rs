//! Stream-level properties:
//!
//! * **Throughput bound** (acceptance): no multi-job schedule beats the
//!   aggregate steady-state throughput bound — over a run of length `T`
//!   the per-worker update counts are feasible for the Table 1 LP, so
//!   `Σ U_i / T ≤ ρ*` (see `metrics`' module docs for the argument).
//! * **Composition with `stargemm-dyn`**: arrivals + cost jitter +
//!   worker churn in one scenario still complete every job, with each
//!   job's retrieved chunks tiling its C exactly; under degraded (≥ 1×)
//!   traces the nominal-platform bound still holds.
//! * **Determinism**: a stream scenario is a pure function of its seed.

use proptest::prelude::*;
use stargemm_core::geometry::validate_coverage;
use stargemm_core::Job;
use stargemm_platform::dynamic::{DynProfile, Trace, WorkerDyn};
use stargemm_platform::{Platform, WorkerSpec};
use stargemm_sim::Simulator;
use stargemm_stream::{
    aggregate_throughput_bound, ArrivalProcess, JobRequest, MultiJobMaster, StreamConfig,
    TenantSpec, WorkloadSpec,
};

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop::collection::vec((0.05f64..2.0, 0.05f64..2.0, 24usize..200), 1..4).prop_map(|specs| {
        Platform::new(
            "prop",
            specs
                .into_iter()
                .map(|(c, w, m)| WorkerSpec::new(c, w, m))
                .collect(),
        )
    })
}

fn arb_workload() -> impl Strategy<Value = Vec<JobRequest>> {
    (2usize..7, 0u64..500, 1usize..3, 2.0f64..40.0).prop_map(|(jobs, seed, tenants, mean)| {
        let tenants = (0..tenants)
            .map(|t| {
                TenantSpec::new(
                    format!("t{t}"),
                    1.0 + t as f64,
                    vec![Job::new(3 + t, 3, 4 + 2 * t, 2), Job::new(2, 2 + t, 3, 2)],
                )
            })
            .collect();
        WorkloadSpec {
            tenants,
            arrivals: ArrivalProcess::Open {
                mean_interarrival: mean,
            },
            jobs,
            seed,
        }
        .generate()
    })
}

fn run_stream(
    platform: &Platform,
    requests: &[JobRequest],
) -> Option<(stargemm_sim::RunStats, MultiJobMaster)> {
    let mut policy = MultiJobMaster::new(platform, requests, StreamConfig::default()).ok()?;
    let stats = Simulator::new(platform.clone())
        .with_arrivals(MultiJobMaster::arrival_plan(requests))
        .run(&mut policy)
        .ok()?;
    Some((stats, policy))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No multi-job schedule beats the aggregate steady-state bound.
    #[test]
    fn throughput_never_beats_the_steady_state_bound(
        platform in arb_platform(),
        requests in arb_workload(),
    ) {
        let Some((stats, _)) = run_stream(&platform, &requests) else {
            // Infeasible layout on this draw — nothing to bound.
            return Ok(());
        };
        prop_assert!(stats.makespan > 0.0);
        let bound = aggregate_throughput_bound(&platform);
        let achieved = stats.total_updates as f64 / stats.makespan;
        prop_assert!(
            achieved <= bound * (1.0 + 1e-9),
            "throughput {} beats the steady-state bound {}",
            achieved,
            bound
        );
    }

    /// Every job completes, every job's retrieved chunks tile its C.
    #[test]
    fn streams_complete_with_exact_per_job_coverage(
        platform in arb_platform(),
        requests in arb_workload(),
    ) {
        let Some((stats, policy)) = run_stream(&platform, &requests) else {
            return Ok(());
        };
        prop_assert_eq!(stats.jobs.len(), requests.len());
        for req in &requests {
            let js = stats.jobs.iter().find(|j| j.job == req.id).unwrap();
            prop_assert!(js.completion.is_some(), "job {} never completed", req.id);
            prop_assert!(
                validate_coverage(&req.job, policy.retrieved_geoms(req.id)).is_ok()
            );
        }
    }

    /// Same platform + same workload seed → byte-identical statistics.
    #[test]
    fn stream_runs_are_deterministic(
        platform in arb_platform(),
        requests in arb_workload(),
    ) {
        let a = run_stream(&platform, &requests).map(|(s, _)| format!("{s:?}"));
        let b = run_stream(&platform, &requests).map(|(s, _)| format!("{s:?}"));
        prop_assert_eq!(a, b);
    }
}

// ----------------------------------------------------------------------
// Composition with the dynamic-platform layer.
// ----------------------------------------------------------------------

fn dyn_base() -> Platform {
    Platform::new(
        "stream-dyn",
        vec![
            WorkerSpec::new(0.2, 0.1, 80),
            WorkerSpec::new(0.3, 0.15, 60),
            WorkerSpec::new(0.5, 0.3, 60),
        ],
    )
}

fn dyn_workload() -> Vec<JobRequest> {
    WorkloadSpec {
        tenants: vec![
            TenantSpec::new("steady", 1.0, vec![Job::new(4, 3, 6, 2)]),
            TenantSpec::new("bursty", 2.0, vec![Job::new(6, 4, 8, 2)]),
        ],
        arrivals: ArrivalProcess::Open {
            mean_interarrival: 15.0,
        },
        jobs: 6,
        seed: 42,
    }
    .generate()
}

/// Arrivals + jitter + churn in one scenario: worker 2 crashes at t = 40
/// and rejoins at 120 while worker 1's link degrades ×2 from t = 30.
fn churny_profile() -> DynProfile {
    DynProfile::new(vec![
        WorkerDyn::stable(),
        WorkerDyn::new(
            Trace::new(vec![(0.0, 1.0), (30.0, 2.0)]),
            Trace::default(),
            vec![],
        ),
        WorkerDyn::new(Trace::default(), Trace::default(), vec![(40.0, 120.0)]),
    ])
}

#[test]
fn stream_composes_with_churn_and_jitter() {
    let base = dyn_base();
    let requests = dyn_workload();
    let mut policy = MultiJobMaster::new(&base, &requests, StreamConfig::default()).unwrap();
    let stats = Simulator::new(base.clone())
        .with_profile(churny_profile())
        .with_arrivals(MultiJobMaster::arrival_plan(&requests))
        .run(&mut policy)
        .unwrap();
    assert_eq!(stats.jobs.len(), requests.len());
    assert!(stats.jobs.iter().all(|j| j.completion.is_some()));
    for req in &requests {
        validate_coverage(&req.job, policy.retrieved_geoms(req.id)).unwrap();
    }
    // Degraded (≥ 1×) traces only slow the platform down, so the
    // nominal-platform bound still holds — even counting redone work.
    let achieved = stats.total_updates as f64 / stats.makespan;
    assert!(achieved <= aggregate_throughput_bound(&base) * (1.0 + 1e-9));
}

#[test]
fn permanent_crash_mid_stream_is_recovered() {
    // Two identical jobs from t = 0; the strongest worker dies for good
    // at t = 20 while both are in flight. Every lost region must be
    // re-planned onto the survivors, both jobs complete with exact
    // coverage, and the redone work shows up in the update count.
    let base = dyn_base();
    let job = Job::new(6, 4, 8, 2);
    let requests: Vec<JobRequest> = (0..2)
        .map(|i| JobRequest {
            id: i,
            tenant: 0,
            weight: 1.0,
            job,
            arrival: 0.0,
        })
        .collect();
    let profile = DynProfile::new(vec![
        WorkerDyn::new(
            Trace::default(),
            Trace::default(),
            vec![(20.0, f64::INFINITY)],
        ),
        WorkerDyn::stable(),
        WorkerDyn::stable(),
    ]);
    let mut policy = MultiJobMaster::new(&base, &requests, StreamConfig::default()).unwrap();
    let stats = Simulator::new(base)
        .with_profile(profile)
        .with_arrivals(MultiJobMaster::arrival_plan(&requests))
        .run(&mut policy)
        .unwrap();
    assert!(policy.stats().reassigned_chunks > 0, "{:?}", policy.stats());
    assert!(stats.jobs.iter().all(|j| j.completion.is_some()));
    for req in &requests {
        validate_coverage(&req.job, policy.retrieved_geoms(req.id)).unwrap();
    }
    // Lost work was redone: strictly more updates than the nominal total.
    assert!(stats.total_updates > 2 * job.total_updates());
}

#[test]
fn churny_stream_is_deterministic() {
    let run = || {
        let base = dyn_base();
        let requests = dyn_workload();
        let mut policy = MultiJobMaster::new(&base, &requests, StreamConfig::default()).unwrap();
        let stats = Simulator::new(base)
            .with_profile(churny_profile())
            .with_arrivals(MultiJobMaster::arrival_plan(&requests))
            .run(&mut policy)
            .unwrap();
        format!("{stats:?}")
    };
    assert_eq!(run(), run());
}
