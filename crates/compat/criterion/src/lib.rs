//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the harness API the workspace's benches are written against —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a deliberately
//! simple measurement core: each benchmark runs a short warm-up, then a
//! fixed number of timed samples, and reports the median per-iteration
//! time on stdout. No statistics engine, no plots, no saved baselines;
//! numbers are indicative, not criterion-grade. The API match means the
//! real crate can be swapped in from a registry-connected environment
//! without editing any bench.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement settings shared by a run.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_count: usize,
    warmup_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 11,
            warmup_iters: 3,
        }
    }
}

impl Criterion {
    /// Parses CLI settings. This stand-in accepts (and ignores) the
    /// filter argument `cargo bench` forwards.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Builder form: sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(3);
        self
    }

    /// Benchmarks one function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_one(self, &id.into().label, &mut f);
        println!("{report}");
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_override: None,
        }
    }

    /// Compatibility no-op (the real crate collects results here).
    pub fn final_summary(&mut self) {}
}

/// A named benchmark family (`group/bench` labels in the report).
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_override: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group only (as
    /// with the real crate, the setting dies with the group).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_override = Some(n.max(3));
        self
    }

    fn effective(&self) -> Criterion {
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_override {
            cfg.sample_count = n;
        }
        cfg
    }

    /// Compatibility no-op: this stand-in sizes samples by iteration
    /// count, not wall-clock budget.
    pub fn measurement_time(&mut self, _budget: Duration) -> &mut Self {
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let report = run_one(&self.effective(), &label, &mut f);
        println!("{report}");
        self
    }

    /// Benchmarks one function parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let report = run_one(&self.effective(), &label, &mut |b| f(b, input));
        println!("{report}");
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group (`function_name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(cfg: &Criterion, label: &str, f: &mut F) -> String {
    // Warm-up: also calibrates how many iterations fit a sample budget.
    let mut b = Bencher {
        iters: cfg.warmup_iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / cfg.warmup_iters.max(1) as f64;
    // Aim for ~20ms per sample, clamped to keep total runtime bounded.
    let iters = if per_iter > 0.0 {
        ((0.02 / per_iter) as u64).clamp(1, 100_000)
    } else {
        100_000
    };

    let mut samples: Vec<f64> = (0..cfg.sample_count)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    format!(
        "{label:<40} time: [{} {} {}]  ({iters} iters/sample)",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    )
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Bundles benchmark functions into a callable group.
///
/// Both the positional form (`criterion_group!(benches, a, b)`) and the
/// named-field form (`name = ..; config = ..; targets = ..`) are
/// accepted, as with the real crate.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+);
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            sample_count: 3,
            warmup_iters: 1,
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_sample_size_does_not_leak_to_later_benches() {
        let mut c = Criterion {
            sample_count: 7,
            warmup_iters: 1,
        };
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("noop", |b| b.iter(|| ()));
            group.finish();
        }
        assert_eq!(c.sample_count, 7, "group override leaked");
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion {
            sample_count: 3,
            warmup_iters: 1,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| b.iter(|| n * n));
        group.finish();
    }
}
