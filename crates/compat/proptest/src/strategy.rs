//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::{Rng, SampleRange};

/// A recipe for producing random values of one type.
///
/// Unlike the real proptest there is no value tree: strategies produce
/// fully-formed values and failures are not shrunk.
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value;

    /// Samples one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy that post-processes sampled values.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: Copy,
    std::ops::Range<T>: SampleRange<T>,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: Copy,
    std::ops::RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
