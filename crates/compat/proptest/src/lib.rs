//! Offline stand-in for [`proptest`](https://proptest-rs.github.io/).
//!
//! Implements the subset the workspace's property suites use:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges, tuples of strategies, and [`prop::collection::vec`];
//! * the [`proptest!`] macro (including `#![proptest_config(..)]` and
//!   multiple `#[test] fn name(arg in strategy, ..) { .. }` items);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking** — a failing case reports its fully-formed inputs
//!   (every strategy here is printable via `Debug`) but is not minimized.
//! * **Deterministic runs** — each test function derives its RNG seed
//!   from its own name, so failures reproduce exactly across runs and
//!   machines. Set `PROPTEST_SEED=<u64>` to explore a different stream.
//! * Rejections (`prop_assume!`) retry with fresh inputs, with the same
//!   "too many global rejects" backstop as the real crate.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Items the suites import wholesale.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The `prop::` namespace (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

pub use test_runner::{ProptestConfig, TestCaseError};

/// Defines property tests over sampled inputs.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in arb_thing()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident
        ($($arg:ident in $strat:expr),+ $(,)?)
        $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                while let Some(mut rng) = runner.next_case() {
                    let ($($arg,)+) = $crate::strategy::Strategy::new_value(
                        &($($strat,)+), &mut rng);
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg,)+);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    runner.record(outcome, &inputs);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case (with an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (resampled, does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}
