//! Case scheduling: configuration, per-case RNGs, rejection accounting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of *accepted* cases each property must pass.
    pub cases: u32,
    /// Cap on total `prop_assume!` rejections before the run aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a test-case closure bailed out early.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: resample, don't count the case.
    Reject(String),
    /// `prop_assert!`-family failure: the property is falsified.
    Fail(String),
}

impl TestCaseError {
    /// A falsification with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (unmet assumption) with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-case random source handed to strategies.
///
/// Each case gets an independent stream derived from `(base seed, case
/// index)`, so a reported case index plus the test name reproduces the
/// inputs exactly.
pub struct TestRng {
    inner: StdRng,
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Drives one property: hands out case RNGs, counts accepts/rejects,
/// panics with full input context on falsification.
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
    case_index: u64,
    accepted: u32,
    rejected: u32,
    name: &'static str,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl TestRunner {
    /// A runner for the property named `name`.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        TestRunner {
            config,
            base_seed: fnv1a(name.as_bytes()) ^ env_seed,
            case_index: 0,
            accepted: 0,
            rejected: 0,
            name,
        }
    }

    /// RNG for the next case, or `None` once enough cases passed.
    pub fn next_case(&mut self) -> Option<TestRng> {
        if self.accepted >= self.config.cases {
            return None;
        }
        let rng = StdRng::seed_from_u64(
            self.base_seed ^ self.case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        self.case_index += 1;
        Some(TestRng { inner: rng })
    }

    /// Accounts for one executed case.
    ///
    /// # Panics
    /// On falsification (with the failing inputs) and when the global
    /// rejection cap is exhausted.
    pub fn record(&mut self, outcome: Result<(), TestCaseError>, inputs: &str) {
        match outcome {
            Ok(()) => self.accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                self.rejected += 1;
                assert!(
                    self.rejected < self.config.max_global_rejects,
                    "property `{}`: too many prop_assume! rejections ({})",
                    self.name,
                    self.rejected
                );
            }
            Err(TestCaseError::Fail(msg)) => panic!(
                "property `{}` falsified at case #{} (seed {:#x}):\n  {}\n  inputs: {}",
                self.name,
                self.case_index - 1,
                self.base_seed,
                msg,
                inputs
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_stops_after_enough_accepts() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(5), "t");
        let mut executed = 0;
        while let Some(_rng) = runner.next_case() {
            executed += 1;
            runner.record(Ok(()), "");
        }
        assert_eq!(executed, 5);
    }

    #[test]
    fn rejections_do_not_count() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(3), "t");
        let mut executed = 0;
        while let Some(_rng) = runner.next_case() {
            executed += 1;
            if executed <= 2 {
                runner.record(Err(TestCaseError::reject("assume")), "");
            } else {
                runner.record(Ok(()), "");
            }
        }
        assert_eq!(executed, 5);
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic_with_context() {
        let mut runner = TestRunner::new(ProptestConfig::default(), "t");
        let _ = runner.next_case().unwrap();
        runner.record(Err(TestCaseError::fail("nope")), "x = 1");
    }
}
