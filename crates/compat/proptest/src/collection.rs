//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Strategy for `Vec`s with a sampled length and sampled elements.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Yields vectors whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
