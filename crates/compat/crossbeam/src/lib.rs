//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! `stargemm-net` uses crossbeam only for its channels — `unbounded()`,
//! `Sender::send`, `Receiver::{recv, recv_timeout, try_recv}` — in a
//! many-producers / one-consumer topology. `std::sync::mpsc` provides
//! that exact contract (std's channels *are* MPSC), so this crate simply
//! re-exports them under crossbeam's module layout and names. Features
//! the real crate adds beyond this (select!, cloneable receivers,
//! bounded rendezvous semantics) are deliberately out of scope.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// A channel with unbounded capacity: sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = channel::unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        tx.send((i, j)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rx.iter().count(), 400);
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = channel::unbounded::<()>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
    }
}
