//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly instead of a `Result`. A poisoned
//! std lock is recovered via [`std::sync::PoisonError::into_inner`] —
//! parking_lot has no poisoning, so propagating a poison panic here would
//! be a behavior difference, not fidelity.

use std::sync::{self, PoisonError};

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard; the lock is released on drop.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the lock if free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
