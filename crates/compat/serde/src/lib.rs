//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The workspace annotates its value types with
//! `#[derive(Serialize, Deserialize)]` so that stats and platform
//! descriptions can be exported once a real serializer is wired up. The
//! build environment has no registry access, so this crate provides the
//! two trait names plus no-op derive macros (feature `derive`, matching
//! the real crate's feature name). Swapping in the real serde is a
//! one-line manifest change; no annotated type needs to be touched.

/// Marker for types that declare themselves serializable.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
