//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The build environment has no registry access, so this crate provides
//! a *working but deliberately small* serialization core instead of the
//! real one: [`Serialize`] converts a value into the JSON data model of
//! [`json::Value`], and the `derive` feature (matching the real crate's
//! feature name) generates that conversion for plain structs and
//! unit-variant enums. The workspace's `--json` experiment output and
//! sweep records all flow through this one serializer.
//!
//! Deviations from the real serde, by design:
//!
//! * the trait is value-model based (`fn to_value(&self) -> Value`), not
//!   visitor based — simpler, and sufficient for JSON export;
//! * [`Deserialize`] remains a marker (nothing in the workspace parses
//!   back yet);
//! * non-finite floats serialize as `null` (JSON cannot carry them),
//!   matching what the hand-rolled exporters did before.
//!
//! Swapping in the real serde from a registry-connected environment
//! means re-deriving with the real macros and replacing
//! `json::to_string` call sites with `serde_json` — annotated types need
//! no changes.

pub mod json;

/// Types that can convert themselves into the JSON data model.
pub trait Serialize {
    /// The value as a [`json::Value`] tree.
    fn to_value(&self) -> json::Value;
}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::Int(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> json::Value {
        json::Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> json::Value {
        json::Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> json::Value {
        match self {
            Some(v) => v.to_value(),
            None => json::Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> json::Value {
        self.as_slice().to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> json::Value {
        json::Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> json::Value {
        json::Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for json::Value {
    fn to_value(&self) -> json::Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::*;

    #[test]
    fn primitives_map_to_the_json_model() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-2i64).to_value(), Value::Int(-2));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(Some(1u8).to_value(), Value::UInt(1));
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1u8, 2.0f64), (3u8, 4.0f64)].to_value();
        assert_eq!(
            v,
            Value::Array(vec![
                Value::Array(vec![Value::UInt(1), Value::Float(2.0)]),
                Value::Array(vec![Value::UInt(3), Value::Float(4.0)]),
            ])
        );
    }
}
