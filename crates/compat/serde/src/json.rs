//! A minimal JSON document model and renderer (the stand-in's
//! counterpart of `serde_json`).
//!
//! Rendering rules, chosen to match what the workspace's hand-rolled
//! exporters produced before serialization was centralized here:
//!
//! * floats render with Rust's shortest-round-trip `{}` formatting
//!   (`1.5`, `1` for `1.0`);
//! * non-finite floats render as `null` — JSON cannot carry them;
//! * object keys keep insertion order (deterministic output);
//! * [`to_string_pretty`] indents with two spaces.

use crate::Serialize;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float (`null` when non-finite).
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array; `None` for other variants.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload; `None` for other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Any numeric variant widened to `f64`; `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// A non-negative integer (`UInt`, or an `Int` ≥ 0); `None`
    /// otherwise.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing
    /// newline.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Value::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub msg: String,
    /// Byte offset into the input where parsing stopped.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`] (the stand-in's counterpart
/// of `serde_json::from_str`).
///
/// Integral numbers parse to `UInt`/`Int` (sign-dependent), everything
/// else numeric to `Float` — so a value rendered by this module parses
/// back to a numerically equal tree. Strict on structure (no trailing
/// garbage, no trailing commas), standard `\uXXXX` escapes including
/// surrogate pairs.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Nesting depth cap: a backstop against stack overflow on adversarial
/// inputs, far above anything the exporters emit.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object_value(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object_value(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("non-ascii \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Run of plain UTF-8 up to the next quote or escape.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number slice is utf-8");
        if integral {
            if let Some(digits) = s.strip_prefix('-') {
                if digits.is_empty() {
                    return Err(self.err("lone minus sign"));
                }
                if let Ok(n) = s.parse::<i64>() {
                    return Ok(Value::Int(n));
                }
            } else if let Ok(n) = s.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        s.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Serializes `value` compactly.
pub fn to_string(value: &impl Serialize) -> String {
    value.to_value().render()
}

/// Serializes `value` with two-space indentation (human-readable result
/// files).
pub fn to_string_pretty(value: &impl Serialize) -> String {
    value.to_value().render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::object([
            ("a", Value::UInt(1)),
            ("b", Value::Array(vec![Value::Null, Value::Bool(false)])),
            ("c", Value::String("x\"y".into())),
        ]);
        assert_eq!(v.render(), r#"{"a":1,"b":[null,false],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_rendering_indents_and_terminates() {
        let v = Value::object([("a", Value::Array(vec![Value::UInt(1), Value::UInt(2)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}\n");
    }

    #[test]
    fn floats_follow_shortest_round_trip_and_null_nonfinite() {
        assert_eq!(Value::Float(1.5).render(), "1.5");
        assert_eq!(Value::Float(1.0).render(), "1");
        assert_eq!(Value::Float(f64::NAN).render(), "null");
        assert_eq!(Value::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(Value::String("a\nb".into()).render(), "\"a\\u000ab\"");
    }

    #[test]
    fn empty_containers_stay_on_one_line() {
        assert_eq!(Value::Array(vec![]).render_pretty(), "[]\n");
        assert_eq!(Value::Object(vec![]).render(), "{}");
    }

    #[test]
    fn parser_round_trips_rendered_documents() {
        let v = Value::object([
            ("a", Value::UInt(1)),
            ("b", Value::Array(vec![Value::Null, Value::Bool(false)])),
            ("c", Value::String("x\"y\n\\z".into())),
            ("d", Value::Float(1.5)),
            ("e", Value::Int(-3)),
            ("f", Value::Object(vec![])),
        ]);
        assert_eq!(from_str(&v.render()).unwrap(), v);
        // Pretty output parses to the same tree.
        assert_eq!(from_str(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parser_classifies_numbers() {
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-42").unwrap(), Value::Int(-42));
        assert_eq!(from_str("1.25").unwrap(), Value::Float(1.25));
        assert_eq!(from_str("2e3").unwrap(), Value::Float(2000.0));
        assert_eq!(from_str("-0.5").unwrap(), Value::Float(-0.5));
    }

    #[test]
    fn parser_handles_unicode_escapes() {
        assert_eq!(
            from_str(r#""a\u000ab""#).unwrap(),
            Value::String("a\nb".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            from_str(r#""\ud83d\ude00""#).unwrap(),
            Value::String("\u{1f600}".into())
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"abc",
            "1 2",
            "{\"a\" 1}",
            "-",
            "\"\\ud83d\"",
        ] {
            assert!(from_str(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_parsed_trees() {
        let v = from_str(r#"{"xs":[{"n":3},{"n":-1}],"s":"hi"}"#).unwrap();
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].get("n").unwrap().as_u64(), Some(3));
        assert_eq!(xs[1].get("n").unwrap().as_f64(), Some(-1.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("missing"), None);
    }
}
