//! A minimal JSON document model and renderer (the stand-in's
//! counterpart of `serde_json`).
//!
//! Rendering rules, chosen to match what the workspace's hand-rolled
//! exporters produced before serialization was centralized here:
//!
//! * floats render with Rust's shortest-round-trip `{}` formatting
//!   (`1.5`, `1` for `1.0`);
//! * non-finite floats render as `null` — JSON cannot carry them;
//! * object keys keep insertion order (deterministic output);
//! * [`to_string_pretty`] indents with two spaces.

use crate::Serialize;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float (`null` when non-finite).
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Compact rendering (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing
    /// newline.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Value::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes `value` compactly.
pub fn to_string(value: &impl Serialize) -> String {
    value.to_value().render()
}

/// Serializes `value` with two-space indentation (human-readable result
/// files).
pub fn to_string_pretty(value: &impl Serialize) -> String {
    value.to_value().render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::object([
            ("a", Value::UInt(1)),
            ("b", Value::Array(vec![Value::Null, Value::Bool(false)])),
            ("c", Value::String("x\"y".into())),
        ]);
        assert_eq!(v.render(), r#"{"a":1,"b":[null,false],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_rendering_indents_and_terminates() {
        let v = Value::object([("a", Value::Array(vec![Value::UInt(1), Value::UInt(2)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}\n");
    }

    #[test]
    fn floats_follow_shortest_round_trip_and_null_nonfinite() {
        assert_eq!(Value::Float(1.5).render(), "1.5");
        assert_eq!(Value::Float(1.0).render(), "1");
        assert_eq!(Value::Float(f64::NAN).render(), "null");
        assert_eq!(Value::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(Value::String("a\nb".into()).render(), "\"a\\u000ab\"");
    }

    #[test]
    fn empty_containers_stay_on_one_line() {
        assert_eq!(Value::Array(vec![]).render_pretty(), "[]\n");
        assert_eq!(Value::Object(vec![]).render(), "{}");
    }
}
