//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate, providing exactly what `stargemm-net`'s wire format needs:
//!
//! * [`BytesMut`] — a growable write buffer with [`BufMut`] put-accessors,
//! * [`Bytes`] — a cheaply-cloneable, reference-counted read view whose
//!   [`Buf`] get-accessors consume from the front.
//!
//! Semantics match the real crate for this surface: `freeze()` converts
//! writer → shared reader; `len()`/`chunk()` report the *remaining*
//! (unconsumed) bytes; the `get_*`/`put_*` accessors are little-endian.

use std::sync::Arc;

/// Read access that consumes from the front of a buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes as a slice.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write access that appends to the back of a buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Growable, uniquely-owned write buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable, cheaply-cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data),
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Shared immutable byte buffer with a read cursor.
///
/// Cloning shares the underlying allocation (each clone has its own
/// cursor), so passing an encoded message to several readers is cheap.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(Vec::new()),
            pos: 0,
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::from(src.to_vec()),
            pos: 0,
        }
    }

    /// Unconsumed bytes remaining.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v),
            pos: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_accessors() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f64_le(-1.5);
        let mut r = w.freeze();
        assert_eq!(r.len(), 1 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64_le(), -1.5);
        assert!(r.is_empty());
    }

    #[test]
    fn clones_have_independent_cursors() {
        let mut w = BytesMut::new();
        w.put_u32_le(1);
        w.put_u32_le(2);
        let mut a = w.freeze();
        let mut b = a.clone();
        assert_eq!(a.get_u32_le(), 1);
        assert_eq!(b.get_u32_le(), 1);
        assert_eq!(a.get_u32_le(), 2);
        assert_eq!(b.get_u32_le(), 2);
    }
}
