//! Distributions: [`Uniform`] over numeric ranges.

use crate::{Rng, SampleRange};
use std::fmt;

/// Error constructing a distribution (empty or inverted range).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid uniform range")
    }
}

impl std::error::Error for Error {}

/// Types with values drawable from a distribution.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over `[lo, hi)` or `[lo, hi]`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: Copy + PartialOrd> Uniform<T> {
    /// Uniform over the half-open `[lo, hi)`. Errors when `lo >= hi`.
    pub fn new(lo: T, hi: T) -> Result<Self, Error> {
        if lo < hi {
            Ok(Uniform {
                lo,
                hi,
                inclusive: false,
            })
        } else {
            Err(Error)
        }
    }

    /// Uniform over the closed `[lo, hi]`. Errors when `lo > hi`.
    pub fn new_inclusive(lo: T, hi: T) -> Result<Self, Error> {
        if lo <= hi {
            Ok(Uniform {
                lo,
                hi,
                inclusive: true,
            })
        } else {
            Err(Error)
        }
    }
}

impl<T> Distribution<T> for Uniform<T>
where
    T: Copy + PartialOrd,
    std::ops::Range<T>: SampleRange<T>,
    std::ops::RangeInclusive<T>: SampleRange<T>,
{
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        if self.inclusive {
            (self.lo..=self.hi).sample_single(rng)
        } else {
            (self.lo..self.hi).sample_single(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let open = Uniform::new(-1.0f64, 1.0).unwrap();
        let closed = Uniform::new_inclusive(1.0f64, 3.0).unwrap();
        for _ in 0..1000 {
            let x = open.sample(&mut rng);
            assert!((-1.0..1.0).contains(&x));
            let y = closed.sample(&mut rng);
            assert!((1.0..=3.0).contains(&y));
        }
    }

    #[test]
    fn invalid_ranges_error() {
        assert!(Uniform::new(1.0f64, 1.0).is_err());
        assert!(Uniform::new_inclusive(2.0f64, 1.0).is_err());
    }
}
