//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a crate registry, so this
//! workspace vendors the *exact* API surface `stargemm` consumes:
//!
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`],
//! * [`Rng::random_range`] over half-open / inclusive numeric ranges,
//! * [`distr::Uniform`] + [`distr::Distribution::sample`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — the same
//! construction the real `rand` crate documents for seeding — so streams
//! are deterministic, well-mixed, and fast. This is a *simulation-grade*
//! RNG: perfectly fine for randomized platforms, property tests and
//! benchmark inputs; not for cryptography.

pub mod distr;
pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing random-value interface.
///
/// Object-safe core (`next_u64`) plus generic convenience methods, so
/// `R: Rng + ?Sized` bounds work exactly as with the real crate.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next `f64` uniform in `[0, 1)` (53 random mantissa bits).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform sample of the full value range (only `bool`/floats in `[0,1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

// The seed code imports this name in a few modules; both spellings
// resolve to the same trait, mirroring rand 0.9 where the range helpers
// live on an extension trait.
pub use Rng as RngExt;

/// Values producible from raw bits without parameters (`Rng::random`).
pub trait Standard: Sized {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for bool {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::random_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        // Scale by the closed width; the open [0,1) sample keeps the
        // result within [lo, hi] up to rounding.
        lo + (hi - lo) * ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let width = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: usize = rng.random_range(3..9usize);
            assert!((3..9).contains(&n));
            let m: u64 = rng.random_range(0..=5u64);
            assert!(m <= 5);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unsized_rng_usable_via_generic_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.next_f64()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
