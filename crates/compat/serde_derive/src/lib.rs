//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! forward-looking annotation — nothing serializes through serde yet, and
//! the build environment cannot fetch the real crate. These derives
//! accept the same syntax and expand to nothing, so the annotations stay
//! in place (and the real serde can be dropped in later without touching
//! any annotated type).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
