//! Derive macros backing the offline `serde` stand-in.
//!
//! `#[derive(Serialize)]` generates a real `serde::Serialize` impl for
//! the value-model trait of the stand-in: named-field structs become
//! JSON objects (fields in declaration order) and unit-variant enums
//! become their variant name as a string — matching the real serde's
//! external representation for those shapes. Anything fancier (tuple
//! structs, data-carrying variants, generics) is rejected with a
//! compile error; the workspace doesn't use those shapes.
//!
//! `#[derive(Deserialize)]` still expands to the marker impl only —
//! nothing in the workspace parses serialized data back yet.
//!
//! The parser below walks the raw token stream directly (no `syn` in an
//! offline environment); it understands attributes/doc comments,
//! visibility modifiers, and nested generic types in field positions
//! (commas inside `<…>` or groups do not split fields).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(Item::Struct { name, fields }) => {
            let pairs = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::json::Value {{\n\
                         ::serde::json::Value::Object(::std::vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated struct impl parses")
        }
        Ok(Item::Enum { name, variants }) => {
            let arms = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::json::Value::String(\
                             ::std::string::String::from({v:?})),"
                    )
                })
                .collect::<String>();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::json::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated enum impl parses")
        }
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(Item::Struct { name, .. }) | Ok(Item::Enum { name, .. }) => {
            format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
                .parse()
                .expect("generated marker impl parses")
        }
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::std::compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected a type name, got {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the serde stand-in derive does not support generic type `{name}`"
        ));
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "the serde stand-in derive does not support tuple struct `{name}`"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!(
                    "the serde stand-in derive does not support unit struct `{name}`"
                ))
            }
            Some(_) => i += 1, // e.g. `where` clauses — none in practice
            None => return Err(format!("no body found for `{name}`")),
        }
    };

    if kind == "struct" {
        Ok(Item::Struct {
            fields: parse_named_fields(body)?,
            name,
        })
    } else {
        Ok(Item::Enum {
            variants: parse_unit_variants(body, &name)?,
            name,
        })
    }
}

/// Advances past leading `#[…]` attributes (incl. doc comments) and a
/// `pub` / `pub(…)` visibility.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // `#` + `[…]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ name: Ty, … }` body, in declaration order.
/// Commas nested in generic arguments (`Vec<(f64, f64)>`,
/// `HashMap<K, V>`) do not terminate a field: groups hide their commas
/// and `<`/`>` depth is tracked explicitly.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected a field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        // Skip the type: up to a comma at angle-bracket depth 0.
        let mut angle_depth = 0usize;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Variant names of an all-unit-variant enum body.
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected a variant name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "the serde stand-in derive supports unit enum variants only; \
                     `{enum_name}::{name}` carries data"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the comma.
                while let Some(tok) = tokens.get(i) {
                    i += 1;
                    if matches!(tok, TokenTree::Punct(q) if q.as_char() == ',') {
                        break;
                    }
                }
            }
            other => return Err(format!("unexpected token after variant: {other:?}")),
        }
        variants.push(name);
    }
    Ok(variants)
}
