//! Property: the allocation-free re-share path is *bitwise* the legacy
//! allocating path.
//!
//! The engines' hot loops call [`maxmin_shares_into`] with a recycled
//! [`ShareScratch`]; the allocating [`maxmin_shares`] wrapper is the
//! reference. Any arithmetic drift between them (a re-ordered sum, a
//! buffer not fully cleared between calls) would silently de-pin every
//! golden schedule, so the contract is equality of `f64::to_bits`, not
//! approximate closeness — across random lane sets, with and without a
//! finite backbone, including the `delta <= 0` saturation break (a zero
//! or exactly-consumed backbone freezes all remaining lanes at once).

use proptest::prelude::*;
use stargemm_netmodel::{maxmin_shares, maxmin_shares_into, ShareScratch, TransferLane};

/// Random active sets: up to 12 lanes over 5 workers, so draws routinely
/// put several lanes on one physical link (the progressive-filling
/// interesting case) and sometimes produce the empty set.
fn arb_lanes() -> impl Strategy<Value = Vec<TransferLane>> {
    prop::collection::vec((0usize..5, 0.05f64..8.0), 0..12).prop_map(|raw| {
        raw.into_iter()
            .map(|(worker, link_rate)| TransferLane { worker, link_rate })
            .collect()
    })
}

/// Backbone selector: infinite (no aggregate constraint), a plain finite
/// cap, a tiny cap that binds before any link does, and exactly zero —
/// the degenerate draw that must take the `delta <= 0` break on the very
/// first filling round.
fn backbone_of(kind: usize, cap: f64) -> f64 {
    match kind {
        0 => f64::INFINITY,
        1 => cap,
        2 => cap * 1e-3,
        _ => 0.0,
    }
}

fn bits(shares: &[f64]) -> Vec<u64> {
    shares.iter().map(|s| s.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `maxmin_shares_into` == `maxmin_shares`, bit for bit, on fresh
    /// scratch buffers.
    #[test]
    fn scratch_path_is_bitwise_the_allocating_path(
        lanes in arb_lanes(),
        kind in 0usize..4,
        cap in 0.0f64..25.0,
    ) {
        let backbone = backbone_of(kind, cap);
        let reference = maxmin_shares(&lanes, backbone);
        let mut scratch = ShareScratch::new();
        maxmin_shares_into(&lanes, backbone, &mut scratch);
        prop_assert_eq!(scratch.shares().len(), lanes.len());
        prop_assert_eq!(bits(scratch.shares()), bits(&reference));
    }

    /// Recycling one scratch across calls (big set, then small, then big
    /// again — the engines' steady state) never lets stale buffer
    /// contents leak into a later allocation.
    #[test]
    fn recycled_scratch_never_leaks_between_calls(
        first in arb_lanes(),
        second in arb_lanes(),
        kind in 0usize..4,
        cap in 0.0f64..25.0,
    ) {
        let backbone = backbone_of(kind, cap);
        let mut scratch = ShareScratch::new();
        maxmin_shares_into(&first, backbone, &mut scratch);
        maxmin_shares_into(&second, backbone, &mut scratch);
        prop_assert_eq!(bits(scratch.shares()), bits(&maxmin_shares(&second, backbone)));
        // And back to the first set: the shrink-then-grow cycle.
        maxmin_shares_into(&first, backbone, &mut scratch);
        prop_assert_eq!(bits(scratch.shares()), bits(&maxmin_shares(&first, backbone)));
    }
}

/// The `delta <= 0` break, pinned deterministically: a zero backbone has
/// no headroom at all, so every lane freezes at rate 0 on round one and
/// both paths must report all-zero shares.
#[test]
fn zero_backbone_saturates_immediately_on_both_paths() {
    let lanes = vec![
        TransferLane {
            worker: 0,
            link_rate: 2.0,
        },
        TransferLane {
            worker: 0,
            link_rate: 2.0,
        },
        TransferLane {
            worker: 1,
            link_rate: 0.5,
        },
    ];
    let reference = maxmin_shares(&lanes, 0.0);
    assert_eq!(reference, vec![0.0; 3]);
    let mut scratch = ShareScratch::new();
    maxmin_shares_into(&lanes, 0.0, &mut scratch);
    assert_eq!(bits(scratch.shares()), bits(&reference));
}

/// An exactly-consumed backbone: two saturating rounds, then the break.
/// The faster link freezes first at the backbone's expense; the rerun
/// through the scratch path reproduces each intermediate freeze bitwise.
#[test]
fn exactly_consumed_backbone_matches_bitwise() {
    let lanes = vec![
        TransferLane {
            worker: 0,
            link_rate: 1.0,
        },
        TransferLane {
            worker: 1,
            link_rate: 3.0,
        },
    ];
    // Backbone = 2.0: both rise to 1.0 (lane 0 saturates its link and the
    // backbone is exactly consumed), so lane 1 freezes mid-link.
    let reference = maxmin_shares(&lanes, 2.0);
    assert_eq!(reference[0], 1.0);
    assert!(reference[1] < 1.0);
    let mut scratch = ShareScratch::new();
    maxmin_shares_into(&lanes, 2.0, &mut scratch);
    assert_eq!(bits(scratch.shares()), bits(&reference));
}
