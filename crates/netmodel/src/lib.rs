//! Pluggable network-contention models for the star platform.
//!
//! The paper hard-wires the **one-port** assumption: the master
//! serializes all of its communications, so at any instant at most one
//! transfer occupies the wire at full link speed. This crate makes the
//! contention model a first-class, swappable component (in the spirit of
//! dslab's throughput-sharing models): the execution engines describe
//! the set of *active transfers* and a [`ContentionModel`] answers two
//! questions —
//!
//! 1. **admission** — how many transfers may be in flight at once
//!    ([`ContentionModel::capacity`]);
//! 2. **sharing** — what fraction of its own link bandwidth each active
//!    transfer progresses at ([`ContentionModel::shares`]).
//!
//! Shares are recomputed whenever the active set changes (a transfer
//! starts or finishes); between those instants they are constant, so the
//! engines can integrate transfer progress in closed form — including
//! over dynamic `c_scale` cost traces, which compose multiplicatively on
//! top of the share.
//!
//! Three models are provided:
//!
//! * [`OnePort`] — the paper's model: one transfer at a time, full link
//!   speed. The degenerate case every other model must generalize.
//! * [`BoundedMultiPort`] — the master drives up to `k` simultaneous
//!   transfers; each is capped by its own link and all of them together
//!   by an aggregate backbone bandwidth.
//! * [`FairShare`] — no admission limit; all active transfers max-min
//!   fair-share a finite backbone, each still capped by its own link.
//!
//! All sharing goes through one deterministic **progressive-filling**
//! max-min allocation ([`maxmin_shares`]): rates rise uniformly until a
//! constraint (a link shared by transfers to the same worker, or the
//! backbone) saturates, freezing its transfers. With a single active
//! transfer and no binding backbone the share is exactly `1.0` — bitwise,
//! not approximately — which is what lets `BoundedMultiPort { k: 1,
//! backbone: ∞ }` reproduce [`OnePort`] byte-for-byte.
//!
//! [`NetModelSpec`] is the serializable/parsable configuration form used
//! by platform files (`@netmodel …` directive), CLIs and sweep grids;
//! [`NetModelSpec::build`] instantiates the trait object.

use std::fmt;

use serde::json::Value;
use serde::Serialize;

/// Instantaneous description of one active transfer, as seen by a
/// contention model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferLane {
    /// Worker whose link the transfer occupies (both directions contend
    /// for the same star edge).
    pub worker: usize,
    /// Nominal capacity of that link in blocks per second (`1 / c_i`).
    pub link_rate: f64,
}

/// Reusable buffers for share computation, so the hot re-share path of
/// an engine's lane table allocates nothing in steady state: the
/// progressive-filling working vectors (`rates`, `frozen`) and the
/// output `shares` all live here and are only ever grown, never freed.
///
/// One scratch per lane table; thread it through
/// [`ContentionModel::shares_into`] on every active-set change.
#[derive(Clone, Debug, Default)]
pub struct ShareScratch {
    rates: Vec<f64>,
    frozen: Vec<bool>,
    shares: Vec<f64>,
}

impl ShareScratch {
    /// A fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        ShareScratch::default()
    }

    /// The shares computed by the last [`ContentionModel::shares_into`]
    /// call, index-aligned with the active set it was given.
    pub fn shares(&self) -> &[f64] {
        &self.shares
    }
}

/// A network-contention model: admission capacity plus bandwidth shares
/// for the active transfer set.
pub trait ContentionModel: Send + Sync {
    /// Human-readable model name (reports, traces).
    fn name(&self) -> &'static str;

    /// Maximum number of simultaneously active transfers the master may
    /// drive (`usize::MAX` = unlimited).
    fn capacity(&self) -> usize;

    /// The share (fraction of its *own* link bandwidth, in `(0, 1]`)
    /// granted to each active transfer, index-aligned with `active`.
    ///
    /// Invariants every model must uphold: transfers on the same worker
    /// link never sum past that link's capacity, and — when the model has
    /// a backbone — allocated rates never sum past it.
    ///
    /// Convenience wrapper over [`ContentionModel::shares_into`] that
    /// allocates the result; the engines' hot paths use the scratch form
    /// directly.
    fn shares(&self, active: &[TransferLane]) -> Vec<f64> {
        let mut scratch = ShareScratch::new();
        self.shares_into(active, &mut scratch);
        std::mem::take(&mut scratch.shares)
    }

    /// Allocation-free form of [`ContentionModel::shares`]: writes the
    /// shares into `scratch.shares` (cleared first), reusing its
    /// buffers. Bitwise-identical results to `shares`.
    fn shares_into(&self, active: &[TransferLane], scratch: &mut ShareScratch);
}

/// Deterministic progressive-filling max-min allocation.
///
/// Every lane's rate rises uniformly from zero; when a constraint
/// saturates — a per-worker link (capacity `link_rate`, shared by every
/// lane addressing that worker) or the aggregate `backbone` — its lanes
/// freeze at their current rate. Returns per-lane *shares*
/// (`rate / link_rate`).
///
/// With one lane per link and a non-binding backbone every share is
/// exactly `1.0`.
pub fn maxmin_shares(active: &[TransferLane], backbone: f64) -> Vec<f64> {
    let mut scratch = ShareScratch::new();
    maxmin_shares_into(active, backbone, &mut scratch);
    std::mem::take(&mut scratch.shares)
}

/// [`maxmin_shares`] writing into a reusable [`ShareScratch`] — the
/// allocation-free form the engines' re-share hot paths call. The
/// arithmetic is identical to the allocating wrapper (bitwise), only the
/// buffers are recycled.
pub fn maxmin_shares_into(active: &[TransferLane], backbone: f64, scratch: &mut ShareScratch) {
    let n = active.len();
    scratch.shares.clear();
    if n == 0 {
        return;
    }
    // Lanes to the same worker share one physical link.
    scratch.rates.clear();
    scratch.rates.resize(n, 0.0);
    scratch.frozen.clear();
    scratch.frozen.resize(n, false);
    let rates = &mut scratch.rates;
    let frozen = &mut scratch.frozen;
    let mut backbone_left = backbone;
    let link_used = |rates: &[f64], worker: usize| -> f64 {
        active
            .iter()
            .zip(rates)
            .filter(|(l, _)| l.worker == worker)
            .map(|(_, &r)| r)
            .sum()
    };
    loop {
        let unfrozen = frozen.iter().filter(|f| !**f).count();
        if unfrozen == 0 {
            break;
        }
        // Headroom per constraint, divided by the unfrozen lanes it
        // covers: the uniform raise is the smallest such quotient.
        let mut delta = if backbone_left.is_finite() {
            backbone_left / unfrozen as f64
        } else {
            f64::INFINITY
        };
        for (i, lane) in active.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let used = link_used(rates, lane.worker);
            let link_unfrozen = active
                .iter()
                .enumerate()
                .filter(|(j, l)| l.worker == lane.worker && !frozen[*j])
                .count();
            delta = delta.min((lane.link_rate - used) / link_unfrozen as f64);
        }
        if delta.is_nan() || delta <= 0.0 {
            // A constraint is exactly saturated (or the backbone is 0):
            // freeze everything still active at its current rate.
            break;
        }
        for i in 0..n {
            if !frozen[i] {
                rates[i] += delta;
                if backbone_left.is_finite() {
                    backbone_left -= delta;
                }
            }
        }
        // Freeze lanes whose link is now saturated. The backbone
        // saturating ends the allocation outright.
        for (i, lane) in active.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            if link_used(rates, lane.worker) >= lane.link_rate * (1.0 - 1e-12) {
                frozen[i] = true;
            }
        }
        if backbone_left.is_finite() && backbone_left <= 0.0 {
            break;
        }
    }
    scratch
        .shares
        .extend(active.iter().zip(rates.iter()).map(|(l, &r)| {
            // A single unconstrained lane must come out at exactly 1.0:
            // its rate accumulated exactly link_rate (one raise of
            // link_rate/1), and link_rate / link_rate == 1.0 bitwise.
            (r / l.link_rate).min(1.0)
        }));
}

/// Completion times of a batch of transfers drained through a
/// contention model: lane `i` must move `volume[i]` blocks over
/// `lanes[i]`, all requested at `t = 0`, admitted FIFO in index order up
/// to [`ContentionModel::capacity`] and re-shared (through
/// [`ContentionModel::shares_into`]) at every completion.
///
/// This is the closed-form integrator the federated layers use for the
/// root's uplink feeds: lane `i` is star `i`'s uplink
/// (`link_rate = 1 / uplink_c_i`), `volume[i]` its shard in blocks, and
/// the returned time is when star `i`'s feed lands. Zero-volume lanes
/// complete at `t = 0` without occupying a port. Deterministic pure-f64
/// arithmetic; under [`OnePort`] lane `i` completes at
/// `Σ_{j ≤ i} volume[j] / link_rate_j` exactly.
///
/// # Panics
/// Panics when `lanes` and `volume` disagree in length or a volume is
/// negative/non-finite.
pub fn drain_times(
    lanes: &[TransferLane],
    volume: &[f64],
    model: &dyn ContentionModel,
) -> Vec<f64> {
    assert_eq!(lanes.len(), volume.len(), "one volume per lane");
    assert!(
        volume.iter().all(|&v| v.is_finite() && v >= 0.0),
        "volumes must be finite and non-negative"
    );
    let n = lanes.len();
    let mut done = vec![0.0f64; n];
    let mut rem = volume.to_vec();
    let mut waiting: std::collections::VecDeque<usize> = (0..n).filter(|&i| rem[i] > 0.0).collect();
    let cap = model.capacity();
    let mut active: Vec<usize> = Vec::with_capacity(cap.min(n));
    while active.len() < cap {
        match waiting.pop_front() {
            Some(i) => active.push(i),
            None => break,
        }
    }
    let mut t = 0.0f64;
    let mut active_lanes: Vec<TransferLane> = Vec::with_capacity(active.len());
    let mut scratch = ShareScratch::new();
    while !active.is_empty() {
        active_lanes.clear();
        active_lanes.extend(active.iter().map(|&i| lanes[i]));
        model.shares_into(&active_lanes, &mut scratch);
        let shares = scratch.shares();
        // Wall time until the first active transfer completes.
        let mut dt = f64::INFINITY;
        for (j, &i) in active.iter().enumerate() {
            let rate = shares[j] * lanes[i].link_rate;
            if rate > 0.0 {
                dt = dt.min(rem[i] / rate);
            }
        }
        if !dt.is_finite() {
            // Every active lane is starved (shares all zero): the
            // remaining transfers never complete.
            for &i in &active {
                done[i] = f64::INFINITY;
            }
            for &i in &waiting {
                done[i] = f64::INFINITY;
            }
            return done;
        }
        t += dt;
        // Complete every lane finishing now (the minimizer, plus ties
        // within fp tolerance — forcing the minimizer avoids a residue
        // like `rem - (rem/rate)*rate != 0`); advance the rest.
        let mut j = 0;
        active.retain(|&i| {
            let rate = shares[j] * lanes[i].link_rate;
            j += 1;
            if rate > 0.0 && rem[i] / rate <= dt * (1.0 + 1e-12) {
                rem[i] = 0.0;
                done[i] = t;
                false
            } else {
                rem[i] -= dt * rate;
                true
            }
        });
        while active.len() < cap {
            match waiting.pop_front() {
                Some(i) => active.push(i),
                None => break,
            }
        }
    }
    done
}

/// The paper's one-port model: one transfer at a time, full link speed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OnePort;

impl ContentionModel for OnePort {
    fn name(&self) -> &'static str {
        "oneport"
    }

    fn capacity(&self) -> usize {
        1
    }

    fn shares_into(&self, active: &[TransferLane], scratch: &mut ShareScratch) {
        debug_assert!(active.len() <= 1, "one-port admitted {}", active.len());
        scratch.shares.clear();
        scratch.shares.resize(active.len(), 1.0);
    }
}

/// Bounded multi-port: the master drives up to `k` simultaneous
/// transfers, each capped by its own link, all of them together by an
/// aggregate `backbone` bandwidth (blocks/s; `∞` = links are the only
/// limit).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundedMultiPort {
    /// Simultaneous transfer limit (`k ≥ 1`).
    pub k: usize,
    /// Aggregate backbone bandwidth in blocks per second.
    pub backbone: f64,
}

impl ContentionModel for BoundedMultiPort {
    fn name(&self) -> &'static str {
        "multiport"
    }

    fn capacity(&self) -> usize {
        self.k
    }

    fn shares_into(&self, active: &[TransferLane], scratch: &mut ShareScratch) {
        debug_assert!(active.len() <= self.k, "multi-port overcommitted");
        maxmin_shares_into(active, self.backbone, scratch);
    }
}

/// Fair-share backbone (dslab-style): no admission limit; all active
/// transfers max-min fair-share the finite backbone, each still capped
/// by its own link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FairShare {
    /// Aggregate backbone bandwidth in blocks per second.
    pub backbone: f64,
}

impl ContentionModel for FairShare {
    fn name(&self) -> &'static str {
        "fairshare"
    }

    fn capacity(&self) -> usize {
        usize::MAX
    }

    fn shares_into(&self, active: &[TransferLane], scratch: &mut ShareScratch) {
        maxmin_shares_into(active, self.backbone, scratch);
    }
}

/// Serializable/parsable configuration of a contention model — the form
/// platform files (`@netmodel` directive), CLIs and sweep grids carry.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum NetModelSpec {
    /// [`OnePort`].
    #[default]
    OnePort,
    /// [`BoundedMultiPort`] with `k` ports and an optional backbone
    /// (`None` = unlimited backbone, links are the only cap).
    BoundedMultiPort {
        /// Simultaneous transfer limit (`k ≥ 1`).
        k: usize,
        /// Aggregate backbone bandwidth in blocks/s (`None` = ∞).
        backbone: Option<f64>,
    },
    /// [`FairShare`] over a finite backbone (blocks/s).
    FairShare {
        /// Aggregate backbone bandwidth in blocks/s.
        backbone: f64,
    },
}

impl NetModelSpec {
    /// Instantiates the configured model.
    ///
    /// # Panics
    /// Panics on an invalid configuration (`k = 0`, or a non-positive /
    /// NaN backbone) — specs built through [`NetModelSpec::parse`] are
    /// validated there with a proper error instead.
    pub fn build(&self) -> Box<dyn ContentionModel> {
        self.validate().expect("invalid net-model spec");
        match *self {
            NetModelSpec::OnePort => Box::new(OnePort),
            NetModelSpec::BoundedMultiPort { k, backbone } => Box::new(BoundedMultiPort {
                k,
                backbone: backbone.unwrap_or(f64::INFINITY),
            }),
            NetModelSpec::FairShare { backbone } => Box::new(FairShare { backbone }),
        }
    }

    /// Admission capacity without building the trait object.
    pub fn capacity(&self) -> usize {
        match *self {
            NetModelSpec::OnePort => 1,
            NetModelSpec::BoundedMultiPort { k, .. } => k,
            NetModelSpec::FairShare { .. } => usize::MAX,
        }
    }

    /// The backbone bandwidth constraint, if any.
    pub fn backbone(&self) -> Option<f64> {
        match *self {
            NetModelSpec::OnePort => None,
            NetModelSpec::BoundedMultiPort { backbone, .. } => backbone.filter(|b| b.is_finite()),
            NetModelSpec::FairShare { backbone } => Some(backbone).filter(|b| b.is_finite()),
        }
    }

    /// Checks the configuration; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            NetModelSpec::OnePort => Ok(()),
            NetModelSpec::BoundedMultiPort { k, backbone } => {
                if k == 0 {
                    return Err("multiport needs k >= 1".into());
                }
                if let Some(b) = backbone {
                    if b.is_nan() || b <= 0.0 {
                        return Err(format!("backbone must be positive, got {b}"));
                    }
                }
                Ok(())
            }
            NetModelSpec::FairShare { backbone } => {
                if backbone.is_nan() || backbone <= 0.0 {
                    return Err(format!("backbone must be positive, got {backbone}"));
                }
                Ok(())
            }
        }
    }

    /// Parses the textual form rendered by [`fmt::Display`]:
    ///
    /// ```text
    /// oneport
    /// multiport k=3
    /// multiport k=2 backbone=7.5
    /// fairshare backbone=4
    /// ```
    pub fn parse(tokens: &[&str]) -> Result<NetModelSpec, String> {
        let (head, rest) = tokens
            .split_first()
            .ok_or_else(|| "empty net-model spec".to_string())?;
        let mut k: Option<usize> = None;
        let mut backbone: Option<f64> = None;
        for tok in rest {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {tok:?}"))?;
            match key {
                "k" => {
                    k = Some(val.parse().map_err(|_| format!("bad port count {val:?}"))?);
                }
                "backbone" => {
                    let b: f64 = if val == "inf" {
                        f64::INFINITY
                    } else {
                        val.parse().map_err(|_| format!("bad backbone {val:?}"))?
                    };
                    backbone = Some(b);
                }
                other => return Err(format!("unknown net-model parameter {other:?}")),
            }
        }
        let spec = match *head {
            "oneport" => {
                if k.is_some() || backbone.is_some() {
                    return Err("oneport takes no parameters".into());
                }
                NetModelSpec::OnePort
            }
            "multiport" => NetModelSpec::BoundedMultiPort {
                k: k.ok_or_else(|| "multiport needs k=<n>".to_string())?,
                backbone: backbone.filter(|b| b.is_finite()),
            },
            "fairshare" => NetModelSpec::FairShare {
                backbone: backbone.ok_or_else(|| "fairshare needs backbone=<rate>".to_string())?,
            },
            other => return Err(format!("unknown net model {other:?}")),
        };
        spec.validate()?;
        Ok(spec)
    }
}

impl fmt::Display for NetModelSpec {
    /// Renders the spec in the exact token form [`NetModelSpec::parse`]
    /// accepts (floats in shortest-round-trip form, so render → parse is
    /// the identity).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NetModelSpec::OnePort => write!(f, "oneport"),
            NetModelSpec::BoundedMultiPort { k, backbone } => {
                write!(f, "multiport k={k}")?;
                if let Some(b) = backbone.filter(|b| b.is_finite()) {
                    write!(f, " backbone={b}")?;
                }
                Ok(())
            }
            NetModelSpec::FairShare { backbone } => write!(f, "fairshare backbone={backbone}"),
        }
    }
}

impl Serialize for NetModelSpec {
    fn to_value(&self) -> Value {
        let (model, k, backbone) = match *self {
            NetModelSpec::OnePort => ("oneport", None, None),
            NetModelSpec::BoundedMultiPort { k, backbone } => {
                ("multiport", Some(k), backbone.filter(|b| b.is_finite()))
            }
            NetModelSpec::FairShare { backbone } => ("fairshare", None, Some(backbone)),
        };
        Value::object([
            ("model", model.to_value()),
            ("k", k.to_value()),
            ("backbone", backbone.to_value()),
        ])
    }
}

impl<'de> serde::Deserialize<'de> for NetModelSpec {}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes(workers_rates: &[(usize, f64)]) -> Vec<TransferLane> {
        workers_rates
            .iter()
            .map(|&(worker, link_rate)| TransferLane { worker, link_rate })
            .collect()
    }

    #[test]
    fn single_lane_gets_share_exactly_one() {
        let l = lanes(&[(0, 4.0)]);
        assert_eq!(maxmin_shares(&l, f64::INFINITY), vec![1.0]);
        // Backbone above the link rate is not binding either.
        assert_eq!(maxmin_shares(&l, 10.0), vec![1.0]);
    }

    #[test]
    fn binding_backbone_throttles_a_single_lane() {
        let l = lanes(&[(0, 4.0)]);
        let s = maxmin_shares(&l, 1.0);
        assert!((s[0] - 0.25).abs() < 1e-12, "{s:?}");
    }

    #[test]
    fn equal_lanes_split_the_backbone_evenly() {
        let l = lanes(&[(0, 4.0), (1, 4.0)]);
        let s = maxmin_shares(&l, 4.0);
        assert!(
            (s[0] - 0.5).abs() < 1e-12 && (s[1] - 0.5).abs() < 1e-12,
            "{s:?}"
        );
    }

    #[test]
    fn maxmin_redistributes_a_slow_lane_surplus() {
        // Backbone 6, links 2 and 10: the slow lane saturates at rate 2,
        // the fast one takes the remaining 4 (share 0.4) — max-min, not
        // an even 3/3 split.
        let l = lanes(&[(0, 2.0), (1, 10.0)]);
        let s = maxmin_shares(&l, 6.0);
        assert!((s[0] - 1.0).abs() < 1e-12, "{s:?}");
        assert!((s[1] - 0.4).abs() < 1e-12, "{s:?}");
    }

    #[test]
    fn same_worker_lanes_share_their_link() {
        // Two transfers to worker 0 (link rate 4) plus one to worker 1:
        // the link constraint halves the first two even with an infinite
        // backbone.
        let l = lanes(&[(0, 4.0), (0, 4.0), (1, 8.0)]);
        let s = maxmin_shares(&l, f64::INFINITY);
        assert!(
            (s[0] - 0.5).abs() < 1e-12 && (s[1] - 0.5).abs() < 1e-12,
            "{s:?}"
        );
        assert!((s[2] - 1.0).abs() < 1e-12, "{s:?}");
    }

    #[test]
    fn allocation_never_exceeds_constraints() {
        // A few irregular cases: totals must respect backbone and links.
        for (ws, bb) in [
            (vec![(0, 1.0), (1, 2.0), (2, 3.0)], 2.5),
            (vec![(0, 5.0), (0, 5.0), (1, 0.5)], 3.0),
            (vec![(0, 1.0)], 0.25),
            (vec![(0, 2.0), (1, 2.0), (1, 2.0), (2, 8.0)], 5.0),
        ] {
            let l = lanes(&ws);
            let s = maxmin_shares(&l, bb);
            let total: f64 = l.iter().zip(&s).map(|(l, &s)| s * l.link_rate).sum();
            assert!(total <= bb * (1.0 + 1e-9), "total {total} > backbone {bb}");
            for w in l.iter().map(|l| l.worker) {
                let link: f64 = l
                    .iter()
                    .zip(&s)
                    .filter(|(l, _)| l.worker == w)
                    .map(|(l, &s)| s * l.link_rate)
                    .sum();
                let cap = l.iter().find(|l| l.worker == w).unwrap().link_rate;
                assert!(link <= cap * (1.0 + 1e-9), "link {w}: {link} > {cap}");
            }
            assert!(s.iter().all(|&x| (0.0..=1.0).contains(&x)), "{s:?}");
        }
    }

    #[test]
    fn scratch_form_is_bitwise_identical_and_reuses_buffers() {
        let mut scratch = ShareScratch::new();
        for (ws, bb) in [
            (vec![(0, 2.0), (1, 10.0)], 6.0),
            (vec![(0, 4.0), (0, 4.0), (1, 8.0)], f64::INFINITY),
            (vec![(0, 1.0), (1, 2.0), (2, 3.0)], 2.5),
            (vec![(0, 7.25)], f64::INFINITY),
            (vec![], 1.0),
        ] {
            let l = lanes(&ws);
            maxmin_shares_into(&l, bb, &mut scratch);
            let owned = maxmin_shares(&l, bb);
            assert_eq!(scratch.shares(), &owned[..], "{ws:?} backbone={bb}");
            // Bitwise, not approximately: the single-lane 1.0 guarantee
            // must survive the scratch path too.
            for (a, b) in scratch.shares().iter().zip(&owned) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Shrinking active sets reuse the grown buffers; capacity never
        // shrinks back.
        let cap = scratch.shares.capacity();
        maxmin_shares_into(&lanes(&[(0, 1.0)]), f64::INFINITY, &mut scratch);
        assert_eq!(scratch.shares(), &[1.0]);
        assert!(scratch.shares.capacity() >= cap);
    }

    #[test]
    fn drain_times_oneport_serializes_fifo() {
        // One-port: lane i completes at the prefix sum of volume/rate.
        let l = lanes(&[(0, 2.0), (1, 4.0), (2, 1.0)]);
        let d = drain_times(&l, &[4.0, 4.0, 3.0], &OnePort);
        assert_eq!(d, vec![2.0, 3.0, 6.0]);
    }

    #[test]
    fn drain_times_zero_volume_completes_instantly() {
        let l = lanes(&[(0, 2.0), (1, 4.0), (2, 1.0)]);
        let d = drain_times(&l, &[4.0, 0.0, 3.0], &OnePort);
        // Lane 1 never occupies the port; lane 2 starts right after 0.
        assert_eq!(d, vec![2.0, 0.0, 5.0]);
    }

    #[test]
    fn drain_times_fairshare_backbone_split() {
        // Two lanes, links 2.0 each, backbone 2.0: rates 1.0 apiece until
        // lane 0 (volume 2) finishes at t=2, then lane 1 takes the full
        // backbone (rate 2.0) for its remaining 2 blocks → t=3.
        let l = lanes(&[(0, 2.0), (1, 2.0)]);
        let d = drain_times(&l, &[2.0, 4.0], &FairShare { backbone: 2.0 });
        assert!(
            (d[0] - 2.0).abs() < 1e-12 && (d[1] - 3.0).abs() < 1e-12,
            "{d:?}"
        );
    }

    #[test]
    fn drain_times_multiport_admits_k_at_a_time() {
        // k=2, no backbone: lanes 0 and 1 run at full link speed; lane 2
        // is admitted when lane 0 finishes.
        let l = lanes(&[(0, 1.0), (1, 2.0), (2, 1.0)]);
        let m = BoundedMultiPort {
            k: 2,
            backbone: f64::INFINITY,
        };
        let d = drain_times(&l, &[1.0, 4.0, 1.0], &m);
        assert!((d[0] - 1.0).abs() < 1e-12, "{d:?}");
        assert!((d[1] - 2.0).abs() < 1e-12, "{d:?}");
        assert!((d[2] - 2.0).abs() < 1e-12, "{d:?}");
    }

    #[test]
    fn drain_times_ties_complete_together() {
        let l = lanes(&[(0, 2.0), (1, 2.0)]);
        let m = BoundedMultiPort {
            k: 2,
            backbone: f64::INFINITY,
        };
        let d = drain_times(&l, &[6.0, 6.0], &m);
        assert_eq!(d, vec![3.0, 3.0]);
    }

    #[test]
    fn oneport_is_capacity_one_full_speed() {
        let m = OnePort;
        assert_eq!(m.capacity(), 1);
        assert_eq!(m.shares(&lanes(&[(3, 0.5)])), vec![1.0]);
        assert!(m.shares(&[]).is_empty());
    }

    #[test]
    fn multiport_k1_unbounded_matches_oneport_bitwise() {
        let spec = NetModelSpec::BoundedMultiPort {
            k: 1,
            backbone: None,
        };
        let m = spec.build();
        assert_eq!(m.capacity(), 1);
        for rate in [0.1, 1.0, 7.25, 1e9] {
            let s = m.shares(&lanes(&[(0, rate)]));
            assert_eq!(s, vec![1.0], "rate {rate}: share must be exactly 1.0");
        }
    }

    #[test]
    fn fairshare_admits_unbounded_lanes() {
        let m = FairShare { backbone: 3.0 };
        assert_eq!(m.capacity(), usize::MAX);
        let l = lanes(&[(0, 2.0), (1, 2.0), (2, 2.0)]);
        let s = m.shares(&l);
        let total: f64 = l.iter().zip(&s).map(|(l, &s)| s * l.link_rate).sum();
        assert!((total - 3.0).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn spec_text_round_trips() {
        let specs = [
            NetModelSpec::OnePort,
            NetModelSpec::BoundedMultiPort {
                k: 3,
                backbone: None,
            },
            NetModelSpec::BoundedMultiPort {
                k: 2,
                backbone: Some(7.5),
            },
            NetModelSpec::FairShare { backbone: 4.0 },
        ];
        for spec in specs {
            let text = spec.to_string();
            let toks: Vec<&str> = text.split_whitespace().collect();
            assert_eq!(NetModelSpec::parse(&toks), Ok(spec), "{text}");
        }
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        for toks in [
            &["warp"][..],
            &["multiport"][..],
            &["multiport", "k=0"][..],
            &["multiport", "k=two"][..],
            &["multiport", "k=2", "backbone=-1"][..],
            &["fairshare"][..],
            &["fairshare", "backbone=0"][..],
            &["fairshare", "backbone=nan"][..],
            &["oneport", "k=2"][..],
            &["multiport", "k"][..],
            &[][..],
        ] {
            assert!(NetModelSpec::parse(toks).is_err(), "{toks:?}");
        }
        // An infinite multiport backbone normalizes to "no backbone".
        let spec = NetModelSpec::parse(&["multiport", "k=2", "backbone=inf"]).unwrap();
        assert_eq!(
            spec,
            NetModelSpec::BoundedMultiPort {
                k: 2,
                backbone: None
            }
        );
    }

    #[test]
    fn spec_serializes_to_a_tagged_object() {
        let v = NetModelSpec::FairShare { backbone: 2.0 }.to_value();
        let s = v.render_pretty();
        assert!(s.contains("\"model\": \"fairshare\""), "{s}");
        assert!(s.contains("\"backbone\": 2"), "{s}");
    }
}
