//! Post-run critical-path attribution: explain every model-second of
//! makespan.
//!
//! The bound-gap metrics ([`crate::runmetrics`]) *measure* how far a run
//! sits from its steady-state LP bound; this module *explains* the gap.
//! From a recorded [`ObsEvent`] log it
//!
//! 1. rebuilds the run's resource intervals (port transfers, compute
//!    steps, federated uplink shipments, memory stalls, worker
//!    downtime, job presence),
//! 2. sweeps the model-time axis once, classifying every instant into
//!    exactly one of eight categories by resource priority, and
//! 3. walks the wait-for chain backwards from the last-finishing
//!    interval to extract the run's *actual* critical path.
//!
//! The category breakdown is **conserved**: the eight categories sum
//! *bit-exactly* to the makespan ([`Attribution::is_conserved`] is a
//! hard invariant, enforced by construction and pinned by proptests).
//! Conservation is what makes differential attribution sound — a
//! makespan delta between two runs is exactly the sum of the per-
//! category deltas ([`Attribution::diff`]).
//!
//! ## Categories
//!
//! | category       | an instant lands here when…                          |
//! |----------------|------------------------------------------------------|
//! | `port_busy`    | a port lane is transferring (highest priority)       |
//! | `compute`      | no transfer, but a worker is computing               |
//! | `uplink_wait`  | only a federated uplink shipment is in flight, or    |
//! |                | the star is empty and a shipment is still queued     |
//! | `memory_stall` | admission/promotion is blocked on worker memory      |
//! | `crash_rework` | every active transfer/step was later lost to a       |
//! |                | crash, or work is pending while a worker is down     |
//! | `port_idle`    | work is pending, nothing runs, and the next activity |
//! |                | is a port transfer (the port *could* have started)   |
//! | `master_gap`   | work is pending, nothing runs, next activity is not  |
//! |                | a transfer (decision/dependency latency)             |
//! | `idle_no_work` | no job in the system and nothing queued              |
//!
//! Priority (top wins) resolves overlaps, so the categories partition
//! the `[0, makespan]` axis. `port_busy` therefore equals the *union*
//! occupancy of the port — on a one-port run this is the same port-busy
//! time the bound-gap port metric is built from.
//!
//! The folded-stacks export ([`Attribution::folded_stacks`]) is a
//! flamegraph view (`category;worker:w;chunk:c <µs>`): activity
//! categories are broken down per interval (parallel work double-counts
//! there, as in any multi-thread flamegraph), gap categories carry the
//! conserved timeline seconds.

use serde::json::Value;
use serde::Serialize;

use crate::event::ObsEvent;

/// Number of attribution categories.
pub const CATEGORY_COUNT: usize = 8;

/// Category names, in the fixed order used everywhere (summation order,
/// JSON field order, table order).
pub const CATEGORY_NAMES: [&str; CATEGORY_COUNT] = [
    "port_busy",
    "port_idle",
    "uplink_wait",
    "compute",
    "memory_stall",
    "master_gap",
    "crash_rework",
    "idle_no_work",
];

/// The conserved makespan decomposition (all model seconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Categories {
    /// A port lane was transferring.
    pub port_busy: f64,
    /// Pending work, idle resources, next activity is a transfer.
    pub port_idle: f64,
    /// Federated uplink shipment in flight (or queued while the star
    /// is otherwise empty).
    pub uplink_wait: f64,
    /// Worker compute with no concurrent transfer.
    pub compute: f64,
    /// Admission/promotion blocked on worker memory.
    pub memory_stall: f64,
    /// Pending work, idle resources, next activity is not a transfer.
    pub master_gap: f64,
    /// Time spent on work later lost to a crash, or waiting out a
    /// crash.
    pub crash_rework: f64,
    /// No job in the system.
    pub idle_no_work: f64,
}

impl Categories {
    /// The categories as an array in [`CATEGORY_NAMES`] order.
    pub fn as_array(&self) -> [f64; CATEGORY_COUNT] {
        [
            self.port_busy,
            self.port_idle,
            self.uplink_wait,
            self.compute,
            self.memory_stall,
            self.master_gap,
            self.crash_rework,
            self.idle_no_work,
        ]
    }

    fn get(&self, i: usize) -> f64 {
        self.as_array()[i]
    }

    fn add(&mut self, i: usize, dt: f64) {
        *self.slot(i) += dt;
    }

    fn slot(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.port_busy,
            1 => &mut self.port_idle,
            2 => &mut self.uplink_wait,
            3 => &mut self.compute,
            4 => &mut self.memory_stall,
            5 => &mut self.master_gap,
            6 => &mut self.crash_rework,
            7 => &mut self.idle_no_work,
            _ => unreachable!("category index out of range"),
        }
    }

    /// Left-to-right sum in the fixed category order. Conservation is
    /// stated against exactly this summation order.
    pub fn total(&self) -> f64 {
        self.as_array().iter().sum()
    }
}

impl Serialize for Categories {
    fn to_value(&self) -> Value {
        Value::Object(
            CATEGORY_NAMES
                .iter()
                .zip(self.as_array())
                .map(|(name, secs)| (name.to_string(), secs.to_value()))
                .collect(),
        )
    }
}

/// Summary of the run's actual critical path: the backward wait-for
/// chain from the last-finishing interval.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CriticalPath {
    /// Intervals on the path.
    pub steps: usize,
    /// Path seconds inside port transfers.
    pub port: f64,
    /// Path seconds inside compute steps.
    pub compute: f64,
    /// Path seconds inside uplink shipments.
    pub uplink: f64,
    /// Path seconds in the gaps between consecutive path intervals
    /// (plus lead-in from 0 and tail-out to makespan).
    pub wait: f64,
}

impl Serialize for CriticalPath {
    fn to_value(&self) -> Value {
        Value::object([
            ("steps", (self.steps as u64).to_value()),
            ("port", self.port.to_value()),
            ("compute", self.compute.to_value()),
            ("uplink", self.uplink.to_value()),
            ("wait", self.wait.to_value()),
        ])
    }
}

/// A complete attribution profile of one recorded run.
#[derive(Clone, Debug, PartialEq)]
pub struct Attribution {
    /// The makespan the categories decompose (model seconds).
    pub makespan: f64,
    /// The conserved category breakdown.
    pub categories: Categories,
    /// Critical-path summary.
    pub critical_path: CriticalPath,
    /// Folded flamegraph stacks (`stack`, seconds). Not serialized into
    /// the JSON `attribution` block; rendered by
    /// [`Attribution::folded_stacks`].
    pub stacks: Vec<(String, f64)>,
}

impl Serialize for Attribution {
    fn to_value(&self) -> Value {
        Value::object([
            ("makespan", self.makespan.to_value()),
            ("categories", self.categories.to_value()),
            ("critical_path", self.critical_path.to_value()),
        ])
    }
}

/// Interval kinds carried through the sweep and the path walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Port,
    Compute,
    Uplink,
}

/// One reconstructed resource interval.
#[derive(Clone, Debug)]
struct Interval {
    start: f64,
    end: f64,
    kind: Kind,
    /// Chunk id for port/compute, job id for uplink.
    id: u32,
    /// Worker for port/compute, star for uplink.
    place: usize,
    /// The work was later lost to a crash.
    rework: bool,
}

impl Attribution {
    /// Builds the attribution profile of a recorded run.
    ///
    /// `makespan` is the engine-reported makespan; every reconstructed
    /// interval is clamped into `[0, makespan]` and the eight categories
    /// are closed to sum bit-exactly to it.
    pub fn from_events(events: &[ObsEvent], makespan: f64) -> Attribution {
        assert!(makespan.is_finite(), "makespan must be finite");
        if makespan <= 0.0 {
            return Attribution {
                makespan: 0.0,
                categories: Categories::default(),
                critical_path: CriticalPath::default(),
                stacks: Vec::new(),
            };
        }

        let intervals = build_intervals(events, makespan);
        let stalls = build_spans(events, makespan, |ev| match ev {
            ObsEvent::MemoryStallBegin { time, job } => Some((*job, *time, true)),
            ObsEvent::MemoryStallEnd { time, job } => Some((*job, *time, false)),
            _ => None,
        });
        let downs = build_spans(events, makespan, |ev| match ev {
            ObsEvent::WorkerDown { time, worker } => Some((*worker as u32, *time, true)),
            ObsEvent::WorkerUp { time, worker } => Some((*worker as u32, *time, false)),
            _ => None,
        });
        let mut jobs = build_spans(events, makespan, |ev| match ev {
            ObsEvent::JobArrived { time, job } => Some((*job, *time, true)),
            ObsEvent::JobCompleted { time, job } => Some((*job, *time, false)),
            _ => None,
        });
        if !events
            .iter()
            .any(|ev| matches!(ev, ObsEvent::JobArrived { .. }))
        {
            // Static (non-stream) runs carry no arrival events: the one
            // job occupies the whole run.
            jobs = vec![(0.0, makespan)];
        }

        let (categories, stacks) = sweep_timeline(&intervals, &stalls, &downs, &jobs, makespan);
        let critical_path = walk_critical_path(&intervals, makespan);

        let mut attr = Attribution {
            makespan,
            categories,
            critical_path,
            stacks,
        };
        attr.close_conservation();
        debug_assert!(attr.is_conserved());
        attr
    }

    /// `true` iff the fixed-order category sum equals the makespan
    /// bit-exactly.
    pub fn is_conserved(&self) -> bool {
        self.categories.total() == self.makespan
    }

    /// Per-category deltas `other - self`, in [`CATEGORY_NAMES`] order.
    /// Because both profiles are conserved, the deltas sum to the
    /// makespan delta (up to one summation's rounding).
    pub fn diff(&self, other: &Attribution) -> [f64; CATEGORY_COUNT] {
        let a = self.categories.as_array();
        let b = other.categories.as_array();
        std::array::from_fn(|i| b[i] - a[i])
    }

    /// Renders the folded flamegraph stacks (`stack count` lines,
    /// counts in integer microseconds), sorted for determinism. Feed
    /// the output straight to `flamegraph.pl` / speedscope.
    pub fn folded_stacks(&self) -> String {
        let mut agg: Vec<(String, u64)> = Vec::new();
        for (stack, secs) in &self.stacks {
            let us = (secs * 1e6).round() as u64;
            if us == 0 {
                continue;
            }
            match agg.iter_mut().find(|(s, _)| s == stack) {
                Some((_, n)) => *n += us,
                None => agg.push((stack.clone(), us)),
            }
        }
        agg.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        for (stack, us) in agg {
            out.push_str(&format!("{stack} {us}\n"));
        }
        out
    }

    /// Closes the floating-point residual so the fixed-order category
    /// sum equals `makespan` bit-exactly. The residual (a few ulps from
    /// segment summation) is folded into the largest category first:
    /// coarse correction, then a ±ulp walk. A large category's ulp can
    /// straddle the target (one step moves the rounded total by two of
    /// its ulps, oscillating around the makespan without landing on
    /// it), so on a straddle the walk escalates to the next-smaller
    /// nonzero category — its finer steps sweep the real-valued sum
    /// through the whole rounding interval of the target, which the
    /// total then cannot skip.
    fn close_conservation(&mut self) {
        let arr = self.categories.as_array();
        let mut order: Vec<usize> = (0..CATEGORY_COUNT).collect();
        order.sort_by(|&a, &b| arr[b].total_cmp(&arr[a]));
        for slot in order {
            // Re-aim the residual at this slot before fine-stepping, so
            // the ulp walk only ever covers a few ulps of the total.
            for _ in 0..64 {
                let delta = self.makespan - self.categories.total();
                if delta == 0.0 {
                    return;
                }
                let v = self.categories.get(slot) + delta;
                *self.categories.slot(slot) = if v < 0.0 { 0.0 } else { v };
            }
            let mut last_side = 0i8;
            for _ in 0..200_000 {
                let total = self.categories.total();
                if total == self.makespan {
                    return;
                }
                let side = if total < self.makespan { 1 } else { -1 };
                if last_side != 0 && side != last_side {
                    // Overshot: this category's step straddles the
                    // target — fall through to a finer category.
                    break;
                }
                last_side = side;
                let cur = self.categories.get(slot);
                let next = if side > 0 {
                    next_up(cur)
                } else {
                    next_down(cur).max(0.0)
                };
                if next == cur {
                    break;
                }
                *self.categories.slot(slot) = next;
            }
            if self.is_conserved() {
                return;
            }
        }
        assert!(
            self.is_conserved(),
            "attribution conservation failed to close: sum {} vs makespan {}",
            self.categories.total(),
            self.makespan
        );
    }
}

/// The next representable f64 above `x` (finite, non-negative inputs).
fn next_up(x: f64) -> f64 {
    if x == 0.0 {
        f64::from_bits(1)
    } else if x > 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        -next_down(-x)
    }
}

/// The next representable f64 below `x` (finite inputs).
fn next_down(x: f64) -> f64 {
    if x == 0.0 {
        -f64::from_bits(1)
    } else if x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else {
        -next_up(-x)
    }
}

/// Rebuilds port / compute / uplink intervals from the event log,
/// clamped to `[0, makespan]`, with crash-rework marking.
fn build_intervals(events: &[ObsEvent], makespan: f64) -> Vec<Interval> {
    let mut out: Vec<Interval> = Vec::new();
    // Open-interval stacks keyed by track identity (mirrors the
    // Perfetto exporter's pairing rules).
    let mut open_port: Vec<(usize, f64, usize, u32)> = Vec::new(); // lane, start, worker, chunk
    let mut open_steps: Vec<((usize, u32, u32), f64)> = Vec::new();
    let mut open_uplinks: Vec<((usize, u32), f64)> = Vec::new();
    // (chunk, loss time): work on `chunk` ending at or before the loss
    // was thrown away by the crash.
    let mut losses: Vec<(u32, f64)> = Vec::new();
    // Per-worker crash times, to clamp intervals the crash cancelled.
    let mut crashes: Vec<(usize, f64)> = Vec::new();

    for ev in events {
        match ev {
            ObsEvent::WorkerDown { time, worker } => crashes.push((*worker, *time)),
            ObsEvent::ChunkLost { time, chunk, .. } => losses.push((*chunk, *time)),
            _ => {}
        }
    }

    let mut push =
        |start: f64, end: f64, kind: Kind, id: u32, place: usize, losses: &[(u32, f64)]| {
            let s = start.clamp(0.0, makespan);
            let e = end.clamp(0.0, makespan);
            if e <= s {
                return;
            }
            let rework = kind != Kind::Uplink && losses.iter().any(|&(c, t)| c == id && e <= t);
            out.push(Interval {
                start: s,
                end: e,
                kind,
                id,
                place,
                rework,
            });
        };

    for ev in events {
        match ev {
            ObsEvent::PortAcquire {
                time,
                lane,
                worker,
                chunk,
                ..
            } => {
                open_port.retain(|(l, ..)| l != lane);
                open_port.push((*lane, *time, *worker, *chunk));
            }
            ObsEvent::PortRelease { time, lane, .. } => {
                if let Some(pos) = open_port.iter().position(|(l, ..)| l == lane) {
                    let (_, start, worker, chunk) = open_port.swap_remove(pos);
                    push(start, *time, Kind::Port, chunk, worker, &losses);
                }
            }
            ObsEvent::ComputeStart {
                time,
                worker,
                chunk,
                step,
                ..
            } => {
                let key = (*worker, *chunk, *step);
                open_steps.retain(|(k, _)| *k != key);
                open_steps.push((key, *time));
            }
            ObsEvent::ComputeEnd {
                time,
                worker,
                chunk,
                step,
            } => {
                let key = (*worker, *chunk, *step);
                if let Some(pos) = open_steps.iter().position(|(k, _)| *k == key) {
                    let (_, start) = open_steps.swap_remove(pos);
                    push(start, *time, Kind::Compute, *chunk, *worker, &losses);
                }
            }
            ObsEvent::UplinkAcquire {
                time, star, job, ..
            } => {
                let key = (*star, *job);
                open_uplinks.retain(|(k, _)| *k != key);
                open_uplinks.push((key, *time));
            }
            ObsEvent::UplinkRelease {
                time, star, job, ..
            } => {
                let key = (*star, *job);
                if let Some(pos) = open_uplinks.iter().position(|(k, _)| *k == key) {
                    let (_, start) = open_uplinks.swap_remove(pos);
                    push(start, *time, Kind::Uplink, *job, *star, &losses);
                }
            }
            _ => {}
        }
    }

    // A step (or transfer) left open was cancelled in flight: the crash
    // that cancelled it bounds the time it really occupied the
    // resource. Everything spent on it is rework.
    for ((worker, chunk, _), start) in open_steps {
        let end = crashes
            .iter()
            .filter(|&&(w, t)| w == worker && t > start)
            .map(|&(_, t)| t)
            .fold(f64::INFINITY, f64::min);
        let end = end.min(makespan);
        if end > start {
            out.push(Interval {
                start: start.clamp(0.0, makespan),
                end,
                kind: Kind::Compute,
                id: chunk,
                place: worker,
                rework: true,
            });
        }
    }
    for (_, start, worker, chunk) in open_port {
        let end = crashes
            .iter()
            .filter(|&&(w, t)| w == worker && t > start)
            .map(|&(_, t)| t)
            .fold(f64::INFINITY, f64::min);
        if end.is_finite() && end > start {
            out.push(Interval {
                start: start.clamp(0.0, makespan),
                end: end.min(makespan),
                kind: Kind::Port,
                id: chunk,
                place: worker,
                rework: true,
            });
        }
    }
    out
}

/// Pairs begin/end marker events (keyed by an id) into clamped spans.
/// Unclosed begins extend to the makespan.
fn build_spans(
    events: &[ObsEvent],
    makespan: f64,
    classify: impl Fn(&ObsEvent) -> Option<(u32, f64, bool)>,
) -> Vec<(f64, f64)> {
    let mut open: Vec<(u32, f64)> = Vec::new();
    let mut out: Vec<(f64, f64)> = Vec::new();
    for ev in events {
        let Some((id, time, begins)) = classify(ev) else {
            continue;
        };
        if begins {
            open.retain(|(k, _)| *k != id);
            open.push((id, time));
        } else if let Some(pos) = open.iter().position(|(k, _)| *k == id) {
            let (_, start) = open.swap_remove(pos);
            let (s, e) = (start.clamp(0.0, makespan), time.clamp(0.0, makespan));
            if e > s {
                out.push((s, e));
            }
        }
    }
    for (_, start) in open {
        let s = start.clamp(0.0, makespan);
        if makespan > s {
            out.push((s, makespan));
        }
    }
    out
}

/// Category indices into [`CATEGORY_NAMES`].
const PORT_BUSY: usize = 0;
const PORT_IDLE: usize = 1;
const UPLINK_WAIT: usize = 2;
const COMPUTE: usize = 3;
const MEMORY_STALL: usize = 4;
const MASTER_GAP: usize = 5;
const CRASH_REWORK: usize = 6;
const IDLE_NO_WORK: usize = 7;

/// Sweeps `[0, makespan]` left to right, classifying each elementary
/// segment by resource priority. Returns the (unclosed) category sums
/// and the folded stacks.
fn sweep_timeline(
    intervals: &[Interval],
    stalls: &[(f64, f64)],
    downs: &[(f64, f64)],
    jobs: &[(f64, f64)],
    makespan: f64,
) -> (Categories, Vec<(String, f64)>) {
    // Delta events: (time, counter index, +1/-1). Counter layout:
    // 0 port total, 1 port rework, 2 compute total, 3 compute rework,
    // 4 uplink, 5 stall, 6 down, 7 job-in-system.
    let mut deltas: Vec<(f64, usize, i64)> = Vec::new();
    let mark = |s: f64, e: f64, c: usize, deltas: &mut Vec<(f64, usize, i64)>| {
        deltas.push((s, c, 1));
        deltas.push((e, c, -1));
    };
    for iv in intervals {
        let (tot, rew) = match iv.kind {
            Kind::Port => (0, 1),
            Kind::Compute => (2, 3),
            Kind::Uplink => (4, 4),
        };
        if iv.kind == Kind::Uplink {
            mark(iv.start, iv.end, 4, &mut deltas);
        } else {
            mark(iv.start, iv.end, tot, &mut deltas);
            if iv.rework {
                mark(iv.start, iv.end, rew, &mut deltas);
            }
        }
    }
    for &(s, e) in stalls {
        mark(s, e, 5, &mut deltas);
    }
    for &(s, e) in downs {
        mark(s, e, 6, &mut deltas);
    }
    for &(s, e) in jobs {
        mark(s, e, 7, &mut deltas);
    }

    // Breakpoints: every delta time plus the two run boundaries.
    let mut points: Vec<f64> = deltas.iter().map(|&(t, ..)| t).collect();
    points.push(0.0);
    points.push(makespan);
    points.sort_by(f64::total_cmp);
    points.dedup_by(|a, b| a == b);

    deltas.sort_by(|a, b| a.0.total_cmp(&b.0));

    // Upcoming-activity starts, for the port_idle / master_gap split
    // and the queued-uplink check.
    let mut starts: Vec<(f64, Kind)> = intervals.iter().map(|iv| (iv.start, iv.kind)).collect();
    starts.sort_by(|a, b| {
        a.0.total_cmp(&b.0).then_with(|| {
            let rank = |k: Kind| match k {
                Kind::Port => 0,
                Kind::Compute => 1,
                Kind::Uplink => 2,
            };
            rank(a.1).cmp(&rank(b.1))
        })
    });
    let uplink_starts: Vec<f64> = starts
        .iter()
        .filter(|(_, k)| *k == Kind::Uplink)
        .map(|&(s, _)| s)
        .collect();

    let mut counts = [0i64; 8];
    let mut di = 0;
    let mut si = 0;
    let mut ui = 0;
    let mut cats = Categories::default();
    let mut gap_stacks: [f64; CATEGORY_COUNT] = [0.0; CATEGORY_COUNT];

    for w in points.windows(2) {
        let (a, b) = (w[0], w[1]);
        // Fold in every interval boundary at or before the segment's
        // left endpoint: an interval covers `a` iff start <= a < end.
        while di < deltas.len() && deltas[di].0 <= a {
            counts[deltas[di].1] += deltas[di].2;
            di += 1;
        }
        while si < starts.len() && starts[si].0 <= a {
            si += 1;
        }
        while ui < uplink_starts.len() && uplink_starts[ui] <= a {
            ui += 1;
        }
        if b <= a {
            continue;
        }
        let cat = if counts[0] > 0 {
            if counts[1] == counts[0] {
                CRASH_REWORK
            } else {
                PORT_BUSY
            }
        } else if counts[2] > 0 {
            if counts[3] == counts[2] {
                CRASH_REWORK
            } else {
                COMPUTE
            }
        } else if counts[4] > 0 {
            UPLINK_WAIT
        } else if counts[5] > 0 {
            MEMORY_STALL
        } else if counts[7] > 0 {
            if counts[6] > 0 {
                CRASH_REWORK
            } else {
                match starts.get(si) {
                    Some((_, Kind::Port)) => PORT_IDLE,
                    Some(_) | None => MASTER_GAP,
                }
            }
        } else if ui < uplink_starts.len() {
            UPLINK_WAIT
        } else {
            IDLE_NO_WORK
        };
        cats.add(cat, b - a);
        // Segments driven by an active interval get per-interval stacks
        // below; pure gap segments own their timeline seconds outright.
        if counts[0] == 0 && counts[2] == 0 && counts[4] == 0 {
            gap_stacks[cat] += b - a;
        }
    }

    let mut stacks: Vec<(String, f64)> = Vec::new();
    for iv in intervals {
        let (cat, frame) = match iv.kind {
            Kind::Port if iv.rework => (
                "crash_rework",
                format!("worker:{};chunk:{}", iv.place, iv.id),
            ),
            Kind::Port => ("port_busy", format!("worker:{};chunk:{}", iv.place, iv.id)),
            Kind::Compute if iv.rework => (
                "crash_rework",
                format!("worker:{};chunk:{}", iv.place, iv.id),
            ),
            Kind::Compute => ("compute", format!("worker:{};chunk:{}", iv.place, iv.id)),
            Kind::Uplink => ("uplink_wait", format!("star:{};job:{}", iv.place, iv.id)),
        };
        stacks.push((format!("{cat};{frame}"), iv.end - iv.start));
    }
    for (i, secs) in gap_stacks.iter().enumerate() {
        if *secs > 0.0 {
            stacks.push((CATEGORY_NAMES[i].to_string(), *secs));
        }
    }
    (cats, stacks)
}

/// Walks the wait-for chain backwards from the last-finishing interval:
/// each step jumps to the interval that the current one most plausibly
/// waited on — a same-chunk interval finishing exactly at our start if
/// one exists (the transfer that fed the step, the step that fed the
/// retrieval), else the latest-finishing port interval not after our
/// start, else the latest-finishing interval of any kind.
fn walk_critical_path(intervals: &[Interval], makespan: f64) -> CriticalPath {
    if intervals.is_empty() {
        return CriticalPath {
            steps: 0,
            port: 0.0,
            compute: 0.0,
            uplink: 0.0,
            wait: makespan,
        };
    }
    // Deterministic ordering: by end, then kind rank, then start/ids.
    let rank = |k: Kind| match k {
        Kind::Port => 0usize,
        Kind::Compute => 1,
        Kind::Uplink => 2,
    };
    let mut order: Vec<usize> = (0..intervals.len()).collect();
    order.sort_by(|&x, &y| {
        let (a, b) = (&intervals[x], &intervals[y]);
        a.end
            .total_cmp(&b.end)
            .then_with(|| rank(a.kind).cmp(&rank(b.kind)))
            .then_with(|| a.start.total_cmp(&b.start))
            .then_with(|| a.id.cmp(&b.id))
            .then_with(|| a.place.cmp(&b.place))
    });

    let ends: Vec<f64> = order.iter().map(|&i| intervals[i].end).collect();

    let mut cur = *order.last().expect("non-empty");
    let mut path = CriticalPath::default();
    let mut prev_start = makespan.max(intervals[cur].end);

    loop {
        let iv = &intervals[cur];
        path.steps += 1;
        let dur = iv.end - iv.start;
        match iv.kind {
            Kind::Port => path.port += dur,
            Kind::Compute => path.compute += dur,
            Kind::Uplink => path.uplink += dur,
        }
        path.wait += (prev_start - iv.end).max(0.0);
        prev_start = iv.start;

        // Predecessor: among intervals finishing at or before our
        // start, take the latest-finishing tie group. Within it, a
        // same-chunk interval finishing exactly at our start is the
        // dependency edge (the transfer that fed the step, the step
        // that fed the retrieval); otherwise the group's rank order
        // prefers port intervals. Every candidate starts strictly
        // before our start (positive length), so the walk makes
        // progress and terminates.
        let hi = ends.partition_point(|&e| e <= iv.start);
        if hi == 0 {
            break;
        }
        let top_end = ends[hi - 1];
        let mut lo = hi - 1;
        while lo > 0 && ends[lo - 1] == top_end {
            lo -= 1;
        }
        let mut next = order[lo];
        if top_end == iv.start && iv.kind != Kind::Uplink {
            for &i in &order[lo..hi] {
                let c = &intervals[i];
                if c.kind != Kind::Uplink && c.id == iv.id {
                    next = i;
                    break;
                }
            }
        }
        cur = next;
    }
    // Lead-in from time zero to the first path interval.
    path.wait += prev_start.max(0.0);
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Dir;

    fn port(t0: f64, t1: f64, lane: usize, worker: usize, chunk: u32) -> [ObsEvent; 2] {
        [
            ObsEvent::PortAcquire {
                time: t0,
                lane,
                worker,
                dir: Dir::ToWorker,
                chunk,
                blocks: 1,
            },
            ObsEvent::PortRelease {
                time: t1,
                lane,
                worker,
                dir: Dir::ToWorker,
                chunk,
                blocks: 1,
            },
        ]
    }

    fn compute(t0: f64, t1: f64, worker: usize, chunk: u32) -> [ObsEvent; 2] {
        [
            ObsEvent::ComputeStart {
                time: t0,
                worker,
                chunk,
                step: 0,
                updates: 1,
            },
            ObsEvent::ComputeEnd {
                time: t1,
                worker,
                chunk,
                step: 0,
            },
        ]
    }

    #[test]
    fn empty_run_attributes_nothing() {
        let attr = Attribution::from_events(&[], 0.0);
        assert_eq!(attr.makespan, 0.0);
        assert!(attr.is_conserved());
        assert_eq!(attr.categories.total(), 0.0);
    }

    #[test]
    fn a_pipelined_run_decomposes_into_port_compute_and_gaps() {
        // port [0,1), compute [1,3), port [3,4); makespan 5.
        let mut ev = Vec::new();
        ev.extend(port(0.0, 1.0, 0, 0, 7));
        ev.extend(compute(1.0, 3.0, 0, 7));
        ev.extend(port(3.0, 4.0, 0, 0, 7));
        let attr = Attribution::from_events(&ev, 5.0);
        assert!(attr.is_conserved());
        assert_eq!(attr.categories.port_busy, 2.0);
        assert_eq!(attr.categories.compute, 2.0);
        // The tail [4,5) has no further activity: master_gap (job in
        // system for the whole static run).
        assert_eq!(attr.categories.master_gap, 1.0);
        assert_eq!(attr.categories.idle_no_work, 0.0);
        // Critical path: port -> compute -> port, no internal gaps.
        assert_eq!(attr.critical_path.steps, 3);
        assert_eq!(attr.critical_path.port, 2.0);
        assert_eq!(attr.critical_path.compute, 2.0);
        assert_eq!(attr.critical_path.wait, 1.0);
    }

    #[test]
    fn port_priority_wins_over_concurrent_compute() {
        let mut ev = Vec::new();
        ev.extend(port(0.0, 2.0, 0, 0, 1));
        ev.extend(compute(1.0, 3.0, 1, 2));
        let attr = Attribution::from_events(&ev, 3.0);
        assert!(attr.is_conserved());
        assert_eq!(attr.categories.port_busy, 2.0);
        assert_eq!(attr.categories.compute, 1.0);
    }

    #[test]
    fn a_gap_before_a_transfer_is_port_idle() {
        // compute [0,1), nothing in [1,2), port [2,3).
        let mut ev = Vec::new();
        ev.extend(compute(0.0, 1.0, 0, 1));
        ev.extend(port(2.0, 3.0, 0, 0, 2));
        let attr = Attribution::from_events(&ev, 3.0);
        assert!(attr.is_conserved());
        assert_eq!(attr.categories.port_idle, 1.0);
        assert_eq!(attr.categories.compute, 1.0);
        assert_eq!(attr.categories.port_busy, 1.0);
    }

    #[test]
    fn lost_chunks_turn_their_work_into_rework() {
        let mut ev: Vec<ObsEvent> = Vec::new();
        ev.extend(port(0.0, 1.0, 0, 0, 5));
        ev.extend(compute(1.0, 2.0, 0, 5));
        ev.push(ObsEvent::WorkerDown {
            time: 2.5,
            worker: 0,
        });
        ev.push(ObsEvent::ChunkLost {
            time: 2.5,
            worker: 0,
            chunk: 5,
        });
        ev.push(ObsEvent::WorkerUp {
            time: 3.0,
            worker: 0,
        });
        ev.extend(port(3.0, 4.0, 0, 1, 5));
        ev.extend(compute(4.0, 5.0, 1, 5));
        let attr = Attribution::from_events(&ev, 5.0);
        assert!(attr.is_conserved());
        // The pre-crash transfer and step were lost: rework. The gap
        // [2,2.5) waits on nothing while up (master_gap... actually the
        // re-dispatch transfer is next: port_idle), [2.5,3.0) is down.
        assert_eq!(attr.categories.crash_rework, 2.5);
        assert_eq!(attr.categories.port_busy, 1.0);
        assert_eq!(attr.categories.compute, 1.0);
        assert_eq!(attr.categories.port_idle, 0.5);
    }

    #[test]
    fn uplink_only_time_is_uplink_wait() {
        let mut ev: Vec<ObsEvent> = vec![
            ObsEvent::UplinkAcquire {
                time: 0.0,
                star: 0,
                job: 1,
                blocks: 4,
            },
            ObsEvent::UplinkRelease {
                time: 2.0,
                star: 0,
                job: 1,
                blocks: 4,
            },
        ];
        ev.extend(port(2.0, 3.0, 0, 0, 1));
        let attr = Attribution::from_events(&ev, 3.0);
        assert!(attr.is_conserved());
        assert_eq!(attr.categories.uplink_wait, 2.0);
        assert_eq!(attr.categories.port_busy, 1.0);
        assert_eq!(attr.critical_path.uplink, 2.0);
    }

    #[test]
    fn memory_stalls_surface_when_nothing_runs() {
        let mut ev: Vec<ObsEvent> = Vec::new();
        ev.extend(port(0.0, 1.0, 0, 0, 1));
        ev.push(ObsEvent::MemoryStallBegin { time: 1.0, job: 0 });
        ev.push(ObsEvent::MemoryStallEnd { time: 2.0, job: 0 });
        ev.extend(port(2.0, 3.0, 0, 0, 2));
        let attr = Attribution::from_events(&ev, 3.0);
        assert!(attr.is_conserved());
        assert_eq!(attr.categories.memory_stall, 1.0);
        assert_eq!(attr.categories.port_busy, 2.0);
    }

    #[test]
    fn no_jobs_and_no_queue_is_idle_no_work() {
        let ev = vec![
            ObsEvent::JobArrived { time: 1.0, job: 0 },
            ObsEvent::JobCompleted { time: 2.0, job: 0 },
        ];
        let attr = Attribution::from_events(&ev, 3.0);
        assert!(attr.is_conserved());
        assert_eq!(attr.categories.idle_no_work, 2.0);
        assert_eq!(attr.categories.master_gap, 1.0);
    }

    #[test]
    fn conservation_closes_awkward_floats() {
        // Endpoints chosen to leave a summation residual.
        let mut ev = Vec::new();
        let mut t = 0.0;
        for i in 0..50 {
            let dt = 0.1 + (i as f64) * 1e-3;
            ev.extend(port(t, t + dt, 0, 0, i));
            t += dt * 1.7;
        }
        let attr = Attribution::from_events(&ev, t);
        assert!(attr.is_conserved());
        assert!(attr.categories.port_busy > 0.0);
    }

    #[test]
    fn folded_stacks_render_sorted_with_integer_microseconds() {
        let mut ev = Vec::new();
        ev.extend(port(0.0, 1.0, 0, 0, 3));
        ev.extend(compute(1.0, 2.5, 0, 3));
        let attr = Attribution::from_events(&ev, 2.5);
        let folded = attr.folded_stacks();
        assert!(folded.contains("port_busy;worker:0;chunk:3 1000000\n"));
        assert!(folded.contains("compute;worker:0;chunk:3 1500000\n"));
        let mut lines: Vec<&str> = folded.lines().collect();
        let sorted = {
            let mut s = lines.clone();
            s.sort();
            s
        };
        assert_eq!(
            lines.len(),
            lines.iter().collect::<std::collections::HashSet<_>>().len()
        );
        assert_eq!(lines, sorted, "stacks are sorted");
        lines.clear();
    }

    #[test]
    fn diff_sums_to_the_makespan_delta() {
        let mut a_ev = Vec::new();
        a_ev.extend(port(0.0, 1.0, 0, 0, 1));
        a_ev.extend(compute(1.0, 2.0, 0, 1));
        let a = Attribution::from_events(&a_ev, 2.0);
        let mut b_ev = Vec::new();
        b_ev.extend(port(0.0, 3.0, 0, 0, 1));
        b_ev.extend(compute(3.0, 4.0, 0, 1));
        let b = Attribution::from_events(&b_ev, 4.0);
        let deltas = a.diff(&b);
        let sum: f64 = deltas.iter().sum();
        assert!((sum - (b.makespan - a.makespan)).abs() < 1e-9);
        // The slowdown is a port slowdown.
        assert_eq!(deltas[0], 2.0);
    }

    #[test]
    fn serialized_block_carries_categories_and_path() {
        let mut ev = Vec::new();
        ev.extend(port(0.0, 1.0, 0, 0, 1));
        let attr = Attribution::from_events(&ev, 1.0);
        let rendered = attr.to_value().render();
        assert!(rendered.contains("\"makespan\""));
        for name in CATEGORY_NAMES {
            assert!(rendered.contains(&format!("\"{name}\"")), "missing {name}");
        }
        assert!(rendered.contains("\"critical_path\""));
        assert!(!rendered.contains("stacks"), "stacks stay out of the block");
    }
}
