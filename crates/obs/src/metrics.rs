//! Metrics registry: counters, gauges, and log-bucketed histograms.
//!
//! Histograms use logarithmic buckets — eight per octave, so bucket
//! boundaries grow by `2^(1/8) ≈ 1.09`. A quantile is answered with the
//! geometric midpoint of the bucket holding the requested rank, which
//! is within a factor `2^(1/16) ≈ 1.045` (< 5% relative error) of the
//! exact order statistic; unit tests pin this against an exact
//! sorted-vector oracle.

use std::collections::BTreeMap;

use serde::json::Value;
use serde::Serialize;

/// Buckets per factor-of-two of value range.
const PER_OCTAVE: usize = 8;
/// Smallest bucketed exponent: values below `2^MIN_EXP` land in the
/// first bucket (durations that small are noise anyway).
const MIN_EXP: i32 = -32;
/// One past the largest bucketed exponent.
const MAX_EXP: i32 = 32;
/// Total bucket count.
const NBUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) * PER_OCTAVE;

/// A fixed-footprint log-bucketed histogram of non-negative samples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    /// Samples that are exactly (or effectively) zero.
    zeros: u64,
    /// Log-bucket counts; allocated lazily on the first positive sample.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Bucket index for a positive sample.
fn bucket_of(v: f64) -> usize {
    let idx = (v.log2() * PER_OCTAVE as f64).floor() as i64 - (MIN_EXP as i64 * PER_OCTAVE as i64);
    idx.clamp(0, NBUCKETS as i64 - 1) as usize
}

/// Geometric midpoint of bucket `i` — the quantile representative.
fn bucket_mid(i: usize) -> f64 {
    let exp = (i as f64 + 0.5) / PER_OCTAVE as f64 + MIN_EXP as f64;
    exp.exp2()
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample. Negative or non-finite samples count as zero
    /// (durations and widths are non-negative by construction).
    pub fn observe(&mut self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        if v == 0.0 {
            self.zeros += 1;
        } else {
            if self.counts.is_empty() {
                self.counts = vec![0; NBUCKETS];
            }
            self.counts[bucket_of(v)] += 1;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Nearest-rank quantile estimate for `q ∈ [0, 1]`, or `None` when
    /// empty. The estimate is the geometric midpoint of the bucket
    /// containing the rank, clamped to the observed `[min, max]`, so it
    /// is within `2^(1/16)` (≈ 4.4%) of the exact order statistic.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zeros {
            return Some(0.0);
        }
        if rank == self.count {
            // The top rank is the maximum itself — report it exactly.
            return Some(self.max);
        }
        let mut seen = self.zeros;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_mid(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

impl Serialize for Histogram {
    fn to_value(&self) -> Value {
        let q = |p: f64| self.quantile(p).unwrap_or(0.0).to_value();
        Value::object([
            ("count", self.count.to_value()),
            ("sum", self.sum.to_value()),
            ("min", self.min.to_value()),
            ("max", self.max.to_value()),
            ("p50", q(0.50)),
            ("p95", q(0.95)),
            ("p99", q(0.99)),
        ])
    }
}

/// Named counters, gauges and histograms for one run.
///
/// Keys are ordered (`BTreeMap`), so [`MetricsRegistry::to_value`]
/// renders deterministically whatever the registration order.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `n` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Sets gauge `name` to `v` (last write wins).
    pub fn set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records `v` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if any sample was ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
}

impl Serialize for MetricsRegistry {
    fn to_value(&self) -> Value {
        let kv = |pairs: Vec<(String, Value)>| Value::Object(pairs);
        Value::object([
            (
                "counters",
                kv(self
                    .counters
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_value()))
                    .collect()),
            ),
            (
                "gauges",
                kv(self
                    .gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_value()))
                    .collect()),
            ),
            (
                "histograms",
                kv(self
                    .histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_value()))
                    .collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift stream — no external rng in unit tests.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Exact nearest-rank quantile over a sorted copy of the samples.
    fn exact_quantile(samples: &[f64], q: f64) -> f64 {
        let mut v = samples.to_vec();
        v.sort_by(f64::total_cmp);
        let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
        v[rank - 1]
    }

    fn check_against_oracle(samples: &[f64]) {
        let mut h = Histogram::new();
        for &s in samples {
            h.observe(s);
        }
        assert_eq!(h.count(), samples.len() as u64);
        for &q in &[0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(samples, q);
            let est = h.quantile(q).unwrap();
            // Geometric-midpoint representative: within 2^(1/16) of the
            // true order statistic (5% covers it with slack).
            let tol = exact.abs() * 0.05 + 1e-12;
            assert!(
                (est - exact).abs() <= tol,
                "q={q}: est {est} vs exact {exact} (n={})",
                samples.len()
            );
        }
    }

    #[test]
    fn quantiles_match_exact_oracle_uniform() {
        let mut rng = XorShift(0x9e3779b97f4a7c15);
        let samples: Vec<f64> = (0..5000).map(|_| rng.f64() * 40.0).collect();
        check_against_oracle(&samples);
    }

    #[test]
    fn quantiles_match_exact_oracle_heavy_tail() {
        let mut rng = XorShift(20080220);
        // Exponentiated uniform: spans ~9 orders of magnitude.
        let samples: Vec<f64> = (0..3000)
            .map(|_| (rng.f64() * 20.0 - 10.0).exp2())
            .collect();
        check_against_oracle(&samples);
    }

    #[test]
    fn quantiles_match_exact_oracle_with_zeros_and_ties() {
        let mut samples = vec![0.0; 500];
        samples.extend(std::iter::repeat_n(3.5, 500));
        samples.extend((1..=500).map(|i| i as f64 * 0.01));
        check_against_oracle(&samples);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = Histogram::new();
        h.observe(7.25);
        for &q in &[0.0, 0.5, 1.0] {
            let est = h.quantile(q).unwrap();
            assert!((est - 7.25).abs() <= 7.25 * 0.05, "q={q}: {est}");
        }
        assert_eq!(h.min(), 7.25);
        assert_eq!(h.max(), 7.25);
    }

    #[test]
    fn extreme_values_clamp_into_edge_buckets() {
        let mut h = Histogram::new();
        h.observe(1e-40); // below 2^-32: first bucket
        h.observe(1e40); // above 2^32: last bucket
        h.observe(f64::INFINITY); // non-finite: counted as zero
        h.observe(-3.0); // negative: counted as zero
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.25), Some(0.0));
        // The p100 is the clamped max, not the bucket midpoint.
        assert_eq!(h.quantile(1.0), Some(1e40));
    }

    #[test]
    fn registry_counters_gauges_roundtrip() {
        let mut m = MetricsRegistry::new();
        m.inc("events.dispatch");
        m.add("events.dispatch", 2);
        m.set("frontier.width", 4.0);
        m.observe("step.secs", 1.5);
        assert_eq!(m.counter("events.dispatch"), 3);
        assert_eq!(m.counter("untouched"), 0);
        assert_eq!(m.gauge("frontier.width"), Some(4.0));
        assert_eq!(m.histogram("step.secs").unwrap().count(), 1);
        let rendered = m.to_value().render();
        assert!(rendered.contains("\"events.dispatch\":3"));
        assert!(rendered.contains("\"histograms\""));
    }
}
