//! The `Recorder` trait and the `ObsSink` handle the engines thread
//! through their hot paths.
//!
//! Zero-cost guarantee: a detached sink is `ObsSink(None)`; emitting
//! through it is one `Option` branch and the event-constructing closure
//! never runs. An attached recorder can only *observe* — nothing in the
//! engines reads recorder state — so attaching one cannot perturb a
//! schedule (pinned by workspace proptests comparing serialized
//! `RunStats` and traces recorder-on vs recorder-off).

use std::cell::RefCell;
use std::rc::Rc;

use crate::event::ObsEvent;
use crate::metrics::MetricsRegistry;

/// A consumer of structured observability events.
pub trait Recorder {
    /// Accepts one event. Called in engine order: event times are
    /// non-decreasing per emitting engine.
    fn record(&mut self, ev: ObsEvent);
}

/// Shared handle to an optional recorder.
///
/// Cloning the handle shares the underlying recorder (`Rc`), which is
/// what lets one recorder observe the engine, the stream master and its
/// member DAG masters in a single run. The handle is deliberately
/// `!Send`: recording is a per-run, single-threaded concern, so the
/// engines take it as a *run parameter*, never storing it in their
/// `Send + Sync` configuration types.
#[derive(Clone, Default)]
pub struct ObsSink(Option<Rc<RefCell<dyn Recorder>>>);

impl ObsSink {
    /// The detached sink: every emit is a single `None` branch.
    pub fn off() -> ObsSink {
        ObsSink(None)
    }

    /// A sink feeding `recorder`.
    pub fn to(recorder: Rc<RefCell<dyn Recorder>>) -> ObsSink {
        ObsSink(Some(recorder))
    }

    /// Whether a recorder is attached.
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Emits the event built by `f` — which is only evaluated when a
    /// recorder is attached.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> ObsEvent) {
        if let Some(r) = &self.0 {
            r.borrow_mut().record(f());
        }
    }
}

impl std::fmt::Debug for ObsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_on() {
            "ObsSink(on)"
        } else {
            "ObsSink(off)"
        })
    }
}

/// The standard in-memory recorder: keeps the full event log and feeds
/// a [`MetricsRegistry`] as events stream in.
///
/// Derived registry entries:
///
/// * `events.<kind>` counters for every event kind;
/// * `port.transfer_secs` histogram of lane occupancy intervals;
/// * `compute.step_secs` histogram of completed step durations;
/// * `dag.frontier_width` histogram sampled at each promotion;
/// * `jobs.active` gauge (admitted minus completed).
#[derive(Default)]
pub struct RunRecorder {
    events: Vec<ObsEvent>,
    metrics: MetricsRegistry,
    /// Lane → acquire time, for occupancy histograms.
    open_lanes: Vec<(usize, f64)>,
    /// (worker, chunk, step) → start time, for step histograms.
    open_steps: Vec<((usize, u32, u32), f64)>,
    active_jobs: i64,
}

impl RunRecorder {
    /// An empty recorder.
    pub fn new() -> RunRecorder {
        RunRecorder::default()
    }

    /// Wraps a fresh recorder for sharing between an engine and its
    /// policies; pair with [`ObsSink::to`].
    pub fn shared() -> Rc<RefCell<RunRecorder>> {
        Rc::new(RefCell::new(RunRecorder::new()))
    }

    /// The recorded event log, in emission order.
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// The metrics derived while recording.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Consumes the recorder, returning `(events, metrics)`.
    pub fn into_parts(self) -> (Vec<ObsEvent>, MetricsRegistry) {
        (self.events, self.metrics)
    }
}

impl Recorder for RunRecorder {
    fn record(&mut self, ev: ObsEvent) {
        self.metrics.inc(&format!("events.{}", ev.kind()));
        match ev {
            ObsEvent::PortAcquire { time, lane, .. } => {
                self.open_lanes.retain(|(l, _)| *l != lane);
                self.open_lanes.push((lane, time));
            }
            ObsEvent::PortRelease { time, lane, .. } => {
                if let Some(pos) = self.open_lanes.iter().position(|(l, _)| *l == lane) {
                    let (_, since) = self.open_lanes.swap_remove(pos);
                    self.metrics.observe("port.transfer_secs", time - since);
                }
            }
            ObsEvent::ComputeStart {
                time,
                worker,
                chunk,
                step,
                ..
            } => {
                let key = (worker, chunk, step);
                self.open_steps.retain(|(k, _)| *k != key);
                self.open_steps.push((key, time));
            }
            ObsEvent::ComputeEnd {
                time,
                worker,
                chunk,
                step,
            } => {
                let key = (worker, chunk, step);
                if let Some(pos) = self.open_steps.iter().position(|(k, _)| *k == key) {
                    let (_, since) = self.open_steps.swap_remove(pos);
                    self.metrics.observe("compute.step_secs", time - since);
                }
            }
            ObsEvent::FrontierPromote { frontier_width, .. } => {
                self.metrics
                    .observe("dag.frontier_width", frontier_width as f64);
            }
            ObsEvent::JobAdmitted { .. } => {
                self.active_jobs += 1;
                self.metrics.set("jobs.active", self.active_jobs as f64);
            }
            ObsEvent::JobCompleted { .. } => {
                self.active_jobs -= 1;
                self.metrics.set("jobs.active", self.active_jobs as f64);
            }
            _ => {}
        }
        self.events.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Dir;

    #[test]
    fn detached_sink_never_runs_the_constructor() {
        let sink = ObsSink::off();
        assert!(!sink.is_on());
        sink.emit(|| unreachable!("constructor ran on a detached sink"));
    }

    #[test]
    fn attached_sink_records_and_derives_metrics() {
        let rec = RunRecorder::shared();
        let sink = ObsSink::to(rec.clone());
        assert!(sink.is_on());
        sink.emit(|| ObsEvent::PortAcquire {
            time: 1.0,
            lane: 0,
            worker: 2,
            dir: Dir::ToWorker,
            chunk: 7,
            blocks: 3,
        });
        sink.emit(|| ObsEvent::PortRelease {
            time: 2.5,
            lane: 0,
            worker: 2,
            dir: Dir::ToWorker,
            chunk: 7,
            blocks: 3,
        });
        sink.emit(|| ObsEvent::ComputeStart {
            time: 2.5,
            worker: 2,
            chunk: 7,
            step: 0,
            updates: 12,
        });
        sink.emit(|| ObsEvent::ComputeEnd {
            time: 4.0,
            worker: 2,
            chunk: 7,
            step: 0,
        });
        drop(sink);
        let rec = Rc::try_unwrap(rec).ok().expect("sole owner").into_inner();
        assert_eq!(rec.events().len(), 4);
        let m = rec.metrics();
        assert_eq!(m.counter("events.port_acquire"), 1);
        let h = m.histogram("port.transfer_secs").unwrap();
        assert_eq!(h.count(), 1);
        assert!((h.sum() - 1.5).abs() < 1e-12);
        let h = m.histogram("compute.step_secs").unwrap();
        assert!((h.sum() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn clones_share_one_recorder() {
        let rec = RunRecorder::shared();
        let a = ObsSink::to(rec.clone());
        let b = a.clone();
        a.emit(|| ObsEvent::JobArrived { time: 0.0, job: 1 });
        b.emit(|| ObsEvent::JobAdmitted { time: 0.0, job: 1 });
        assert_eq!(rec.borrow().events().len(), 2);
        assert_eq!(rec.borrow().metrics().gauge("jobs.active"), Some(1.0));
    }
}
