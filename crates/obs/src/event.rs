//! The unified structured event schema.
//!
//! One enum covers both engines (`sim` emits model time directly; `net`
//! maps wall clock through its `time_scale` into the same model-time
//! axis) and every master policy. Identifiers are the engine-level ones
//! (`worker`/`lane` indices, `u32` chunk/job/task ids) so an event is
//! meaningful without any policy context.

/// Direction of a wire transfer on the master's port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Master sends operand blocks out to a worker.
    ToWorker,
    /// Master retrieves result blocks back from a worker.
    ToMaster,
}

impl Dir {
    /// Short label used in trace tracks and rendered timelines.
    pub fn label(self) -> &'static str {
        match self {
            Dir::ToWorker => "send",
            Dir::ToMaster => "recv",
        }
    }
}

/// Matrix operand carried by a master→worker fragment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatTag {
    A,
    B,
    C,
}

impl MatTag {
    /// Single-letter operand label.
    pub fn label(self) -> &'static str {
        match self {
            MatTag::A => "A",
            MatTag::B => "B",
            MatTag::C => "C",
        }
    }
}

/// One structured observability event. All times are model seconds.
#[derive(Clone, Debug, PartialEq)]
pub enum ObsEvent {
    /// A transfer was admitted onto contention lane `lane` of the
    /// master's port.
    PortAcquire {
        time: f64,
        lane: usize,
        worker: usize,
        dir: Dir,
        chunk: u32,
        blocks: u64,
    },
    /// The transfer occupying `lane` completed and freed the lane.
    PortRelease {
        time: f64,
        lane: usize,
        worker: usize,
        dir: Dir,
        chunk: u32,
        blocks: u64,
    },
    /// A compute step started on a worker.
    ComputeStart {
        time: f64,
        worker: usize,
        chunk: u32,
        step: u32,
        updates: u64,
    },
    /// The step completed. A crash cancels the step in flight, so a
    /// cancelled step never emits its `ComputeEnd` — exactly mirroring
    /// engine semantics.
    ComputeEnd {
        time: f64,
        worker: usize,
        chunk: u32,
        step: u32,
    },
    /// Master decision: a fragment dispatch was issued to a worker.
    Dispatch {
        time: f64,
        worker: usize,
        chunk: u32,
        step: u32,
        mat: MatTag,
        blocks: u64,
    },
    /// Master decision: the stream allocator re-solved the weighted
    /// max-min LP over the active job set.
    LpResolve {
        time: f64,
        jobs: Vec<u32>,
        shares: Vec<f64>,
    },
    /// Master decision: a job's deficit counter was charged for port
    /// seconds consumed by one of its fragments.
    DeficitCredit {
        time: f64,
        job: u32,
        port_seconds: f64,
    },
    /// Master decision: a ready DAG task was promoted out of the
    /// frontier onto a worker lane. `frontier_width` counts the tasks
    /// that were ready immediately before the promotion.
    FrontierPromote {
        time: f64,
        job: u32,
        task: u32,
        worker: usize,
        frontier_width: usize,
    },
    /// A worker crashed (lifecycle trace or injected fault).
    WorkerDown { time: f64, worker: usize },
    /// A crashed worker came back up.
    WorkerUp { time: f64, worker: usize },
    /// A chunk's in-progress state was lost to a worker crash.
    ChunkLost {
        time: f64,
        worker: usize,
        chunk: u32,
    },
    /// A federated uplink started shipping a job's operand volume from
    /// the root master down to star `star`.
    UplinkAcquire {
        time: f64,
        star: usize,
        job: u32,
        blocks: u64,
    },
    /// The uplink shipment for `job` landed at star `star`.
    UplinkRelease {
        time: f64,
        star: usize,
        job: u32,
        blocks: u64,
    },
    /// The stream/DAG master found work ready but could not admit it
    /// for lack of worker memory (no fitting slot / capacity). One
    /// event per stall episode, closed by `MemoryStallEnd`.
    MemoryStallBegin { time: f64, job: u32 },
    /// The memory/slot stall for `job` ended (admission or promotion
    /// became possible again).
    MemoryStallEnd { time: f64, job: u32 },
    /// A job entered the system (arrival event).
    JobArrived { time: f64, job: u32 },
    /// The stream master admitted an arrived job into the active set.
    JobAdmitted { time: f64, job: u32 },
    /// A job's last result block reached the master.
    JobCompleted { time: f64, job: u32 },
}

impl ObsEvent {
    /// Model-time stamp of the event, whatever its variant.
    pub fn time(&self) -> f64 {
        match *self {
            ObsEvent::PortAcquire { time, .. }
            | ObsEvent::PortRelease { time, .. }
            | ObsEvent::ComputeStart { time, .. }
            | ObsEvent::ComputeEnd { time, .. }
            | ObsEvent::Dispatch { time, .. }
            | ObsEvent::LpResolve { time, .. }
            | ObsEvent::DeficitCredit { time, .. }
            | ObsEvent::FrontierPromote { time, .. }
            | ObsEvent::WorkerDown { time, .. }
            | ObsEvent::WorkerUp { time, .. }
            | ObsEvent::ChunkLost { time, .. }
            | ObsEvent::UplinkAcquire { time, .. }
            | ObsEvent::UplinkRelease { time, .. }
            | ObsEvent::MemoryStallBegin { time, .. }
            | ObsEvent::MemoryStallEnd { time, .. }
            | ObsEvent::JobArrived { time, .. }
            | ObsEvent::JobAdmitted { time, .. }
            | ObsEvent::JobCompleted { time, .. } => time,
        }
    }

    /// Schema name of the variant (used as the Perfetto event name
    /// prefix and in metrics counter keys).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::PortAcquire { .. } => "port_acquire",
            ObsEvent::PortRelease { .. } => "port_release",
            ObsEvent::ComputeStart { .. } => "compute_start",
            ObsEvent::ComputeEnd { .. } => "compute_end",
            ObsEvent::Dispatch { .. } => "dispatch",
            ObsEvent::LpResolve { .. } => "lp_resolve",
            ObsEvent::DeficitCredit { .. } => "deficit_credit",
            ObsEvent::FrontierPromote { .. } => "frontier_promote",
            ObsEvent::WorkerDown { .. } => "worker_down",
            ObsEvent::WorkerUp { .. } => "worker_up",
            ObsEvent::ChunkLost { .. } => "chunk_lost",
            ObsEvent::UplinkAcquire { .. } => "uplink_acquire",
            ObsEvent::UplinkRelease { .. } => "uplink_release",
            ObsEvent::MemoryStallBegin { .. } => "memory_stall_begin",
            ObsEvent::MemoryStallEnd { .. } => "memory_stall_end",
            ObsEvent::JobArrived { .. } => "job_arrived",
            ObsEvent::JobAdmitted { .. } => "job_admitted",
            ObsEvent::JobCompleted { .. } => "job_completed",
        }
    }
}
