//! The headline bound-gap metrics block embedded in `--json` artifacts.
//!
//! Every gap compares an *achieved* quantity against a *bound* that the
//! schedule provably cannot beat, so `gap = achieved / bound ≤ 1.0` on
//! every run:
//!
//! * **port** — occupancy-seconds on the master's port vs
//!   `peak_lanes × makespan` (the port cannot be busier than its peak
//!   concurrency for the whole run);
//! * **throughput** — achieved updates/second vs the generalized
//!   steady-state LP bound `ρ*`;
//! * **workers** — per-worker busy fraction alongside the LP plan's
//!   share of the work, exposing where the plan and the schedule
//!   disagree;
//! * **tenants** — per-tenant achieved vs LP-entitled throughput
//!   (stream runs only).
//!
//! This crate stays a dependency leaf: callers compute the LP inputs
//! (`core::steady`, `stream::aggregate_throughput_bound`) and hand in
//! plain numbers.

use serde::{Deserialize, Serialize};

/// An achieved quantity against a provable bound, with the ratio
/// precomputed for the JSON artifact.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoundGap {
    /// What the schedule actually did.
    pub achieved: f64,
    /// What no schedule can beat.
    pub bound: f64,
    /// `achieved / bound` (0 when the bound is degenerate).
    pub gap: f64,
}

impl BoundGap {
    /// Builds the pair and precomputes the ratio.
    pub fn new(achieved: f64, bound: f64) -> BoundGap {
        let gap = if bound > 0.0 { achieved / bound } else { 0.0 };
        BoundGap {
            achieved,
            bound,
            gap,
        }
    }
}

/// One worker's busy fraction next to its LP plan share.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkerGap {
    /// Worker index.
    pub worker: usize,
    /// Fraction of the makespan the worker spent computing.
    pub busy_fraction: f64,
    /// Fraction of total work the steady-state plan assigns it.
    pub plan_share: f64,
}

/// One tenant's achieved throughput against its LP entitlement.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantGap {
    /// Tenant index (stream layer numbering).
    pub tenant: usize,
    /// Updates per second the tenant actually got.
    pub achieved: f64,
    /// Updates per second the weighted LP entitles it to.
    pub bound: f64,
}

/// The per-run metrics block.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Run makespan in model seconds.
    pub makespan: f64,
    /// Port occupancy vs `peak_lanes × makespan`.
    pub port: BoundGap,
    /// Achieved updates/second vs the generalized LP `ρ*`.
    pub throughput: BoundGap,
    /// Per-worker busy-fraction-vs-plan-share rows.
    pub workers: Vec<WorkerGap>,
    /// Per-tenant achieved-vs-entitled throughput (stream runs only).
    pub tenants: Vec<TenantGap>,
    /// Widest DAG ready-frontier observed (0 without DAG jobs).
    pub frontier_peak: u64,
}

impl RunMetrics {
    /// Derives the block from engine aggregates plus LP inputs.
    ///
    /// `peak_lanes` is the maximum number of simultaneously occupied
    /// port lanes (≥ 1 whenever anything was transferred), which makes
    /// the port gap provably ≤ 1. `plan_shares` may be empty when no
    /// steady-state plan applies (rows get share 0).
    pub fn derive(
        makespan: f64,
        port_busy: f64,
        peak_lanes: usize,
        achieved_throughput: f64,
        lp_throughput: f64,
        worker_busy_fractions: &[f64],
        plan_shares: &[f64],
    ) -> RunMetrics {
        let lanes = peak_lanes.max(1) as f64;
        let port = BoundGap::new(port_busy, lanes * makespan);
        let throughput = BoundGap::new(achieved_throughput, lp_throughput);
        let workers = worker_busy_fractions
            .iter()
            .enumerate()
            .map(|(w, &busy)| WorkerGap {
                worker: w,
                busy_fraction: busy,
                plan_share: plan_shares.get(w).copied().unwrap_or(0.0),
            })
            .collect();
        RunMetrics {
            makespan,
            port,
            throughput,
            workers,
            tenants: Vec::new(),
            frontier_peak: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[test]
    fn gaps_stay_at_or_below_one_by_construction() {
        // 2 lanes busy 1.4s over a 1.0s run: gap 0.7 of the 2-lane ceiling.
        let m = RunMetrics::derive(1.0, 1.4, 2, 90.0, 100.0, &[0.9, 0.5], &[0.6, 0.4]);
        assert!((m.port.gap - 0.7).abs() < 1e-12);
        assert!((m.throughput.gap - 0.9).abs() < 1e-12);
        assert!(m.port.gap <= 1.0 && m.throughput.gap <= 1.0);
        assert_eq!(m.workers.len(), 2);
        assert_eq!(m.workers[1].plan_share, 0.4);
    }

    #[test]
    fn degenerate_bounds_render_a_zero_gap() {
        let m = RunMetrics::derive(0.0, 0.0, 0, 0.0, 0.0, &[], &[]);
        assert_eq!(m.port.gap, 0.0);
        assert_eq!(m.throughput.gap, 0.0);
        let rendered = m.to_value().render();
        assert!(rendered.contains("\"frontier_peak\":0"));
        assert!(rendered.contains("\"tenants\":[]"));
    }
}
