//! Chrome/Perfetto `trace_event` export of a recorded event log.
//!
//! The exported JSON loads directly in <https://ui.perfetto.dev> (or
//! `chrome://tracing`). Track layout:
//!
//! * **process 1 — `port`**: one thread per contention lane; every
//!   admitted transfer is a duration event (`ph: "X"`) named
//!   `send`/`recv` with worker/chunk/blocks args.
//! * **process 2 — `workers`**: three threads per worker — `send`,
//!   `recv` (wire occupancy from that worker's perspective) and `cpu`
//!   (compute steps).
//! * **process 3 — `jobs`**: one thread per job; a span from arrival to
//!   completion (stream/DAG runs only).
//! * **process 4 — `master`**: instant events (`ph: "i"`) for every
//!   scheduling decision — dispatch, LP re-solve, deficit credit,
//!   frontier promotion, crash/recovery, admission.
//!
//! Times are model seconds scaled to microseconds (`ts`/`dur`).
//! Intervals left open at the end of the log (e.g. a compute step
//! cancelled by a crash) are dropped, mirroring engine cancellation
//! semantics.

use serde::json::Value;
use serde::Serialize;

use crate::event::{Dir, ObsEvent};

const PORT_PID: u64 = 1;
const WORKER_PID: u64 = 2;
const JOB_PID: u64 = 3;
const MASTER_PID: u64 = 4;
const UPLINK_PID: u64 = 5;

fn us(t: f64) -> f64 {
    t * 1e6
}

/// One complete duration event.
fn span(pid: u64, tid: u64, name: String, start: f64, end: f64, args: Value) -> Value {
    Value::object([
        ("name", Value::String(name)),
        ("ph", "X".to_value()),
        ("pid", pid.to_value()),
        ("tid", tid.to_value()),
        ("ts", us(start).to_value()),
        ("dur", us(end - start).to_value()),
        ("args", args),
    ])
}

/// One instant event on the master decisions track.
fn instant(name: String, t: f64, args: Value) -> Value {
    Value::object([
        ("name", Value::String(name)),
        ("ph", "i".to_value()),
        ("s", "t".to_value()),
        ("pid", MASTER_PID.to_value()),
        ("tid", 1u64.to_value()),
        ("ts", us(t).to_value()),
        ("args", args),
    ])
}

/// `process_name` / `thread_name` metadata event.
fn meta(pid: u64, tid: Option<u64>, name: &str) -> Value {
    let mut fields = vec![
        (
            "name".to_string(),
            if tid.is_some() {
                "thread_name".to_value()
            } else {
                "process_name".to_value()
            },
        ),
        ("ph".to_string(), "M".to_value()),
        ("pid".to_string(), pid.to_value()),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".to_string(), tid.to_value()));
    }
    fields.push((
        "args".to_string(),
        Value::object([("name", name.to_value())]),
    ));
    Value::Object(fields)
}

fn worker_tid(worker: usize, dir: Option<Dir>) -> u64 {
    3 * worker as u64
        + match dir {
            Some(Dir::ToWorker) => 1,
            Some(Dir::ToMaster) => 2,
            None => 3, // cpu
        }
}

/// Converts a recorded event log into a Perfetto/Chrome `trace_event`
/// JSON document.
pub fn perfetto_trace(events: &[ObsEvent]) -> Value {
    let mut out: Vec<Value> = Vec::new();
    let mut metas: Vec<Value> = vec![
        meta(PORT_PID, None, "port"),
        meta(WORKER_PID, None, "workers"),
        meta(MASTER_PID, None, "master"),
        meta(MASTER_PID, Some(1), "decisions"),
    ];
    let mut seen_lane: Vec<usize> = Vec::new();
    let mut seen_worker: Vec<usize> = Vec::new();
    let mut seen_job: Vec<u32> = Vec::new();
    let mut job_pid_named = false;

    // Open-interval bookkeeping, keyed by track identity.
    let mut open_port: Vec<(usize, f64)> = Vec::new();
    let mut open_steps: Vec<((usize, u32, u32), f64)> = Vec::new();
    let mut open_jobs: Vec<(u32, f64)> = Vec::new();
    let mut open_uplinks: Vec<((usize, u32), f64)> = Vec::new();
    let mut seen_star: Vec<usize> = Vec::new();
    let mut uplink_pid_named = false;

    let note_lane = |lane: usize, metas: &mut Vec<Value>, seen: &mut Vec<usize>| {
        if !seen.contains(&lane) {
            seen.push(lane);
            metas.push(meta(
                PORT_PID,
                Some(lane as u64 + 1),
                &format!("lane {lane}"),
            ));
        }
    };
    let note_worker = |w: usize, metas: &mut Vec<Value>, seen: &mut Vec<usize>| {
        if !seen.contains(&w) {
            seen.push(w);
            metas.push(meta(
                WORKER_PID,
                Some(worker_tid(w, Some(Dir::ToWorker))),
                &format!("w{w} send"),
            ));
            metas.push(meta(
                WORKER_PID,
                Some(worker_tid(w, Some(Dir::ToMaster))),
                &format!("w{w} recv"),
            ));
            metas.push(meta(
                WORKER_PID,
                Some(worker_tid(w, None)),
                &format!("w{w} cpu"),
            ));
        }
    };

    for ev in events {
        match ev {
            ObsEvent::PortAcquire {
                time, lane, worker, ..
            } => {
                note_lane(*lane, &mut metas, &mut seen_lane);
                note_worker(*worker, &mut metas, &mut seen_worker);
                open_port.retain(|(l, _)| l != lane);
                open_port.push((*lane, *time));
            }
            ObsEvent::PortRelease {
                time,
                lane,
                worker,
                dir,
                chunk,
                blocks,
            } => {
                note_worker(*worker, &mut metas, &mut seen_worker);
                if let Some(pos) = open_port.iter().position(|(l, _)| l == lane) {
                    let (_, start) = open_port.swap_remove(pos);
                    let args = Value::object([
                        ("worker", worker.to_value()),
                        ("chunk", chunk.to_value()),
                        ("blocks", blocks.to_value()),
                    ]);
                    let name = format!("{} w{worker} c{chunk}", dir.label());
                    // Same interval on the port-lane track and on the
                    // worker's directional comm track.
                    out.push(span(
                        PORT_PID,
                        *lane as u64 + 1,
                        name.clone(),
                        start,
                        *time,
                        args.clone(),
                    ));
                    out.push(span(
                        WORKER_PID,
                        worker_tid(*worker, Some(*dir)),
                        name,
                        start,
                        *time,
                        args,
                    ));
                }
            }
            ObsEvent::ComputeStart {
                time,
                worker,
                chunk,
                step,
                ..
            } => {
                note_worker(*worker, &mut metas, &mut seen_worker);
                let key = (*worker, *chunk, *step);
                open_steps.retain(|(k, _)| *k != key);
                open_steps.push((key, *time));
            }
            ObsEvent::ComputeEnd {
                time,
                worker,
                chunk,
                step,
            } => {
                let key = (*worker, *chunk, *step);
                if let Some(pos) = open_steps.iter().position(|(k, _)| *k == key) {
                    let (_, start) = open_steps.swap_remove(pos);
                    out.push(span(
                        WORKER_PID,
                        worker_tid(*worker, None),
                        format!("c{chunk} s{step}"),
                        start,
                        *time,
                        Value::object([("chunk", chunk.to_value()), ("step", step.to_value())]),
                    ));
                }
            }
            ObsEvent::JobArrived { time, job } => {
                if !job_pid_named {
                    job_pid_named = true;
                    metas.push(meta(JOB_PID, None, "jobs"));
                }
                if !seen_job.contains(job) {
                    seen_job.push(*job);
                    metas.push(meta(JOB_PID, Some(*job as u64 + 1), &format!("job {job}")));
                }
                open_jobs.retain(|(j, _)| j != job);
                open_jobs.push((*job, *time));
            }
            ObsEvent::JobCompleted { time, job } => {
                if let Some(pos) = open_jobs.iter().position(|(j, _)| j == job) {
                    let (_, start) = open_jobs.swap_remove(pos);
                    out.push(span(
                        JOB_PID,
                        *job as u64 + 1,
                        format!("job {job}"),
                        start,
                        *time,
                        Value::object([("job", job.to_value())]),
                    ));
                }
                out.push(instant(
                    "job_completed".to_string(),
                    ev.time(),
                    Value::object([("job", job.to_value())]),
                ));
            }
            ObsEvent::Dispatch {
                time,
                worker,
                chunk,
                step,
                mat,
                blocks,
            } => {
                out.push(instant(
                    format!("dispatch {} w{worker}", mat.label()),
                    *time,
                    Value::object([
                        ("worker", worker.to_value()),
                        ("chunk", chunk.to_value()),
                        ("step", step.to_value()),
                        ("mat", mat.label().to_value()),
                        ("blocks", blocks.to_value()),
                    ]),
                ));
            }
            ObsEvent::LpResolve { time, jobs, shares } => {
                out.push(instant(
                    "lp_resolve".to_string(),
                    *time,
                    Value::object([
                        (
                            "jobs",
                            Value::Array(jobs.iter().map(|j| j.to_value()).collect()),
                        ),
                        (
                            "shares",
                            Value::Array(shares.iter().map(|s| s.to_value()).collect()),
                        ),
                    ]),
                ));
            }
            ObsEvent::DeficitCredit {
                time,
                job,
                port_seconds,
            } => {
                out.push(instant(
                    "deficit_credit".to_string(),
                    *time,
                    Value::object([
                        ("job", job.to_value()),
                        ("port_seconds", port_seconds.to_value()),
                    ]),
                ));
            }
            ObsEvent::FrontierPromote {
                time,
                job,
                task,
                worker,
                frontier_width,
            } => {
                out.push(instant(
                    format!("promote j{job} t{task}"),
                    *time,
                    Value::object([
                        ("job", job.to_value()),
                        ("task", task.to_value()),
                        ("worker", worker.to_value()),
                        ("frontier_width", frontier_width.to_value()),
                    ]),
                ));
            }
            ObsEvent::WorkerDown { time, worker } => {
                out.push(instant(
                    format!("worker_down w{worker}"),
                    *time,
                    Value::object([("worker", worker.to_value())]),
                ));
            }
            ObsEvent::WorkerUp { time, worker } => {
                out.push(instant(
                    format!("worker_up w{worker}"),
                    *time,
                    Value::object([("worker", worker.to_value())]),
                ));
            }
            ObsEvent::ChunkLost {
                time,
                worker,
                chunk,
            } => {
                out.push(instant(
                    format!("chunk_lost c{chunk}"),
                    *time,
                    Value::object([("worker", worker.to_value()), ("chunk", chunk.to_value())]),
                ));
            }
            ObsEvent::UplinkAcquire {
                time, star, job, ..
            } => {
                if !uplink_pid_named {
                    uplink_pid_named = true;
                    metas.push(meta(UPLINK_PID, None, "uplinks"));
                }
                if !seen_star.contains(star) {
                    seen_star.push(*star);
                    metas.push(meta(
                        UPLINK_PID,
                        Some(*star as u64 + 1),
                        &format!("star {star}"),
                    ));
                }
                let key = (*star, *job);
                open_uplinks.retain(|(k, _)| *k != key);
                open_uplinks.push((key, *time));
            }
            ObsEvent::UplinkRelease {
                time,
                star,
                job,
                blocks,
            } => {
                let key = (*star, *job);
                if let Some(pos) = open_uplinks.iter().position(|(k, _)| *k == key) {
                    let (_, start) = open_uplinks.swap_remove(pos);
                    out.push(span(
                        UPLINK_PID,
                        *star as u64 + 1,
                        format!("feed j{job}"),
                        start,
                        *time,
                        Value::object([("job", job.to_value()), ("blocks", blocks.to_value())]),
                    ));
                }
            }
            ObsEvent::MemoryStallBegin { time, job } => {
                out.push(instant(
                    format!("memory_stall_begin j{job}"),
                    *time,
                    Value::object([("job", job.to_value())]),
                ));
            }
            ObsEvent::MemoryStallEnd { time, job } => {
                out.push(instant(
                    format!("memory_stall_end j{job}"),
                    *time,
                    Value::object([("job", job.to_value())]),
                ));
            }
            ObsEvent::JobAdmitted { time, job } => {
                out.push(instant(
                    "job_admitted".to_string(),
                    *time,
                    Value::object([("job", job.to_value())]),
                ));
            }
        }
    }

    metas.extend(out);
    Value::object([
        ("traceEvents", Value::Array(metas)),
        ("displayTimeUnit", "ms".to_value()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_builds_port_worker_and_job_tracks() {
        let events = vec![
            ObsEvent::JobArrived { time: 0.0, job: 3 },
            ObsEvent::PortAcquire {
                time: 0.0,
                lane: 0,
                worker: 1,
                dir: Dir::ToWorker,
                chunk: 9,
                blocks: 4,
            },
            ObsEvent::PortRelease {
                time: 0.8,
                lane: 0,
                worker: 1,
                dir: Dir::ToWorker,
                chunk: 9,
                blocks: 4,
            },
            ObsEvent::ComputeStart {
                time: 0.8,
                worker: 1,
                chunk: 9,
                step: 0,
                updates: 8,
            },
            ObsEvent::ComputeEnd {
                time: 2.0,
                worker: 1,
                chunk: 9,
                step: 0,
            },
            ObsEvent::JobCompleted { time: 2.0, job: 3 },
        ];
        let doc = perfetto_trace(&events);
        let rendered = doc.render();
        assert!(rendered.contains("\"traceEvents\""));
        assert!(rendered.contains("\"process_name\""));
        assert!(rendered.contains("\"lane 0\""));
        assert!(rendered.contains("\"w1 cpu\""));
        assert!(rendered.contains("\"job 3\""));
        assert!(rendered.contains("\"send w1 c9\""));
        // Interval durations are in microseconds.
        assert!(rendered.contains("\"dur\":800000"));
    }

    #[test]
    fn unclosed_intervals_are_dropped() {
        let events = vec![ObsEvent::ComputeStart {
            time: 1.0,
            worker: 0,
            chunk: 1,
            step: 0,
            updates: 2,
        }];
        let doc = perfetto_trace(&events);
        assert!(!doc.render().contains("\"ph\":\"X\""));
    }
}
