//! Unified observability layer for the star-platform engines.
//!
//! Every figure in the paper is a claim about *where time went* — port
//! occupancy vs compute overlap — yet until this crate the engines
//! could only answer post-hoc through [`RunStats`]-style aggregates.
//! This crate defines one structured event schema ([`ObsEvent`])
//! covering both engines and every master policy:
//!
//! * **wire** — port acquire/release per contention lane, with
//!   direction, operand and block count;
//! * **compute** — per-worker step start/end intervals;
//! * **decisions** — chunk dispatch, stream LP re-solves, deficit
//!   credits, DAG frontier promotion, crash/recovery, job
//!   admission/completion.
//!
//! Events flow through a [`Recorder`] behind an [`ObsSink`] handle.
//! The sink is **zero-overhead when disabled**: detached it is a
//! `None` — one branch per would-be event, and the event constructor
//! (a closure) is never run. Recording never feeds back into the
//! engines: a recorder can only observe, so recorder-on and
//! recorder-off runs produce byte-identical schedules and stats (pinned
//! by workspace proptests).
//!
//! Downstream of the event stream:
//!
//! * [`MetricsRegistry`] — counters, gauges and log-bucketed
//!   [`Histogram`]s (quantiles oracle-tested against exact sorted
//!   vectors);
//! * [`RunMetrics`] — headline *bound-gap* block (port utilization vs
//!   the LP ceiling, per-worker busy fraction vs plan share, achieved
//!   vs LP throughput, DAG frontier width) embedded in `--json`
//!   artifacts;
//! * [`perfetto_trace`] — Chrome/Perfetto `trace_event` JSON with one
//!   track per port lane, per worker comm/compute lane, and per job
//!   (written by every `exp_*` binary's `--trace-out` flag);
//! * [`Attribution`] — post-run critical-path attribution: a conserved
//!   decomposition of the makespan into eight wait/work categories
//!   (summing *bit-exactly* to the makespan), a critical-path summary,
//!   and folded flamegraph stacks (written by `--attr-out`, embedded as
//!   the `attribution` block in `--json` artifacts, and diffed by
//!   `exp_attr --diff`).
//!
//! Dependency-graph position: `obs` is a leaf above `serde` only, so
//! every engine and policy crate can depend on it without cycles; LP
//! inputs for the bound gaps are computed by the *callers* (bench
//! binaries) and passed in as plain numbers.
//!
//! [`RunStats`]: ../stargemm_sim/stats/struct.RunStats.html

mod attr;
mod event;
mod metrics;
mod perfetto;
mod recorder;
mod runmetrics;

pub use attr::{Attribution, Categories, CriticalPath, CATEGORY_COUNT, CATEGORY_NAMES};
pub use event::{Dir, MatTag, ObsEvent};
pub use metrics::{Histogram, MetricsRegistry};
pub use perfetto::perfetto_trace;
pub use recorder::{ObsSink, Recorder, RunRecorder};
pub use runmetrics::{BoundGap, RunMetrics, TenantGap, WorkerGap};
