//! # stargemm
//!
//! A full reproduction of *“Matrix Product on Heterogeneous Master-Worker
//! Platforms”* (Dongarra, Pineau, Robert, Vivien — PPoPP 2008) as a Rust
//! workspace. This facade crate re-exports the member crates:
//!
//! * [`linalg`] — `q × q` block matrices and GEMM kernels,
//! * [`platform`] — the heterogeneous star-platform model and presets,
//! * [`lp`] — a small simplex solver for the steady-state bound (Table 1),
//! * [`netmodel`] — pluggable network-contention models (one-port,
//!   bounded multi-port, fair-share backbone) shared by both engines,
//! * [`sim`] — a discrete-event simulator of the one-port star network,
//! * [`core`] — the paper's scheduling algorithms and baselines,
//! * [`dag`] — DAG-structured jobs (tiled LU task graphs) with
//!   critical-path-aware ready-frontier dispatch on the star,
//! * [`net`] — a hand-rolled threaded messaging runtime (MPI substitute),
//! * [`dynamic`] — time-varying platforms (cost traces, worker churn)
//!   and the adaptive online scheduler built on top of them,
//! * [`stream`] — multi-tenant job streams: seeded arrival generators,
//!   the weighted max-min multi-job allocator, and the online
//!   time-sharing master,
//! * [`obs`] — the unified observability layer: structured run
//!   recorder, bound-gap metrics registry, and Perfetto trace export.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! reproduction of every table and figure.
//!
//! # Example
//!
//! Schedule a product on a small heterogeneous platform and compare the
//! paper's algorithm against Toledo's baseline:
//!
//! ```
//! use stargemm::core::algorithms::{run_algorithm, Algorithm};
//! use stargemm::core::Job;
//! use stargemm::platform::{Platform, WorkerSpec};
//!
//! let platform = Platform::new("demo", vec![
//!     WorkerSpec::new(0.5, 0.25, 60), // (sec/block, sec/update, buffers)
//!     WorkerSpec::new(1.0, 0.50, 24),
//! ]);
//! let job = Job::new(8, 6, 12, 80); // C is 8×12 blocks, inner dim 6
//!
//! let het = run_algorithm(&platform, &job, Algorithm::Het).unwrap();
//! let bmm = run_algorithm(&platform, &job, Algorithm::Bmm).unwrap();
//! assert_eq!(het.total_updates, job.total_updates());
//! assert!(het.makespan <= bmm.makespan); // the paper's headline
//! ```

pub use stargemm_core as core;
pub use stargemm_dag as dag;
pub use stargemm_dyn as dynamic;
pub use stargemm_linalg as linalg;
pub use stargemm_lp as lp;
pub use stargemm_net as net;
pub use stargemm_netmodel as netmodel;
pub use stargemm_obs as obs;
pub use stargemm_platform as platform;
pub use stargemm_sim as sim;
pub use stargemm_stream as stream;
