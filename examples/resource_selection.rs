//! Inside the heterogeneous algorithm: the eight resource-selection
//! variants, who they enroll, and the steady-state upper bound.
//!
//! ```sh
//! cargo run --release --example resource_selection
//! ```

use stargemm::core::select_het::{allocate, SelectionVariant};
use stargemm::core::steady::bandwidth_centric;
use stargemm::core::Job;
use stargemm::platform::presets;
use stargemm::sim::Simulator;

fn main() {
    let platform = presets::fully_het(4.0);
    let job = Job::paper(80_000);

    println!("platform: {} ({} workers)", platform.name, platform.len());
    println!(
        "{:<4} {:>10} {:>10} {:>8}",
        "id", "c (ms/blk)", "w (ms/upd)", "m (blks)"
    );
    for (i, s) in platform.iter() {
        println!(
            "P{:<3} {:>10.3} {:>10.3} {:>8}",
            i + 1,
            s.c * 1e3,
            s.w * 1e3,
            s.m
        );
    }

    let ss = bandwidth_centric(&platform, job.r);
    println!(
        "\nbandwidth-centric steady state: throughput {:.0} updates/s, enrolls {:?}",
        ss.throughput,
        ss.enrolled.iter().map(|w| w + 1).collect::<Vec<_>>()
    );

    println!("\nPhase-1 selection, all eight variants:");
    println!(
        "{:<14} {:>10} {:>24} {:>12}",
        "variant", "makespan", "chunk-columns per worker", "enrolled"
    );
    for v in SelectionVariant::all() {
        let alloc = allocate(&platform, &job, v);
        let per_worker: Vec<String> = alloc
            .queues
            .iter()
            .map(|q| {
                let cols: usize = q.iter().filter(|c| c.geom.i0 == 0).map(|c| c.geom.w).sum();
                format!("{cols}")
            })
            .collect();
        let mut policy = stargemm::core::select_het::het_policy(&platform, &job, v);
        let makespan = Simulator::new(platform.clone())
            .run(&mut policy)
            .map(|s| s.makespan)
            .unwrap_or(f64::NAN);
        let enrolled = alloc.queues.iter().filter(|q| !q.is_empty()).count();
        println!(
            "{:<14} {:>9.1}s {:>24} {:>12}",
            v.label(),
            makespan,
            per_worker.join("/"),
            enrolled
        );
    }
    println!("\nHet runs all eight in simulation and executes the winner.");
}
