//! Explore the Section 3 communication bounds: how close does the
//! maximum re-use algorithm get to `√(27/8m)` as memory grows?
//!
//! ```sh
//! cargo run --release --example bound_explorer
//! ```

use stargemm::core::bounds::{
    ccr_lower_bound, ito_lower_bound, maxreuse_ccr, maxreuse_ccr_asymptotic, toledo_ccr_asymptotic,
};

fn main() {
    println!("communication-to-computation ratios (block units), t = 1000");
    println!(
        "{:>8} {:>11} {:>11} {:>11} {:>11} {:>13} {:>13}",
        "m", "bound", "ITO bound", "maxreuse", "Toledo", "maxreuse/bnd", "Toledo/maxr"
    );
    for exp in 6..=20 {
        let m = 1usize << exp;
        let bound = ccr_lower_bound(m);
        let reuse = maxreuse_ccr(m, 1000);
        let toledo = toledo_ccr_asymptotic(m);
        println!(
            "{:>8} {:>11.5} {:>11.5} {:>11.5} {:>11.5} {:>13.4} {:>13.4}",
            m,
            bound,
            ito_lower_bound(m),
            reuse,
            toledo,
            reuse / bound,
            toledo / maxreuse_ccr_asymptotic(m),
        );
    }
    println!(
        "\nmaxreuse/bound should approach sqrt(32/27) = {:.4}; \
         Toledo/maxreuse should approach sqrt(3) = {:.4}.",
        (32.0f64 / 27.0).sqrt(),
        3.0f64.sqrt()
    );
    println!(
        "In scalar units divide by q: with q = 80 a ratio of 0.025 means \
         one coefficient moved per 3200 floating-point operations."
    );
}
