//! Quickstart: schedule a matrix product on a heterogeneous star
//! platform and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stargemm::core::algorithms::{run_algorithm, Algorithm};
use stargemm::core::steady::makespan_lower_bound;
use stargemm::core::Job;
use stargemm::platform::{Platform, WorkerSpec};

fn main() {
    // A master and four workers: (c, w, m) = per-block link time,
    // per-block-update compute time, and memory in block buffers.
    let platform = Platform::new(
        "quickstart",
        vec![
            WorkerSpec::new(0.004, 0.0005, 20_000), // fast link, fast CPU, 1 GB
            WorkerSpec::new(0.008, 0.0005, 10_000), // half-bandwidth
            WorkerSpec::new(0.004, 0.0010, 5_000),  // half-speed CPU, 256 MB
            WorkerSpec::new(0.016, 0.0020, 5_000),  // slow everything
        ],
    );

    // C ← C + A·B with A 8000×8000 and B 8000×48000, in 80×80 blocks.
    let job = Job::from_scalar_dims(8000, 8000, 48_000, 80);
    println!(
        "job: C {}×{} blocks, inner dimension {} blocks ({} block updates)",
        job.r,
        job.s,
        job.t,
        job.total_updates()
    );
    println!(
        "steady-state makespan lower bound: {:.1}s\n",
        makespan_lower_bound(&platform, &job)
    );

    println!(
        "{:<8} {:>12} {:>9} {:>12} {:>8}",
        "policy", "makespan", "enrolled", "work", "CCR"
    );
    for alg in Algorithm::all() {
        let stats = run_algorithm(&platform, &job, alg).expect("schedulable");
        println!(
            "{:<8} {:>11.1}s {:>9} {:>12.1} {:>8.4}",
            alg.name(),
            stats.makespan,
            stats.enrolled(),
            stats.work(),
            stats.ccr()
        );
    }
    println!("\nHet should be at or near the top while enrolling fewer workers.");
}
