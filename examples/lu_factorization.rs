//! Extension: LU factorization on the master-worker platform (the
//! adaptation the paper's conclusion defers to its companion report).
//!
//! Shows both halves: (1) the in-core block LU kernel verified against
//! reconstruction, and (2) the distributed schedule where every trailing
//! update is farmed out with the paper's heterogeneous algorithm.
//!
//! ```sh
//! cargo run --release --example lu_factorization
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use stargemm::core::algorithms::Algorithm;
use stargemm::core::lu::schedule_lu;
use stargemm::linalg::lu::{lu_factor, lu_residual, random_diag_dominant};
use stargemm::platform::{Platform, WorkerSpec};

fn main() {
    // (1) The kernel: factor a 6×6-block (48×48 scalar) matrix.
    let mut rng = StdRng::seed_from_u64(7);
    let a0 = random_diag_dominant(6, 8, &mut rng);
    let mut f = a0.clone();
    lu_factor(&mut f).expect("diagonally dominant ⇒ factorable");
    let residual = lu_residual(&a0, &f);
    println!("in-core block LU: ‖A − L·U‖_max = {residual:.2e} (48×48)");
    assert!(residual < 1e-9);

    // (2) The schedule: a 40×40-block LU on a heterogeneous platform.
    let platform = Platform::new(
        "lu-demo",
        vec![
            WorkerSpec::new(0.004, 0.0005, 2_000),
            WorkerSpec::new(0.008, 0.0010, 1_000),
            WorkerSpec::new(0.016, 0.0020, 500),
        ],
    );
    println!("\ndistributed LU of a 40×40-block matrix (q = 80):");
    println!(
        "{:<8} {:>12} {:>14} {:>14}",
        "policy", "total", "update frac", "peak enrolled"
    );
    for alg in [
        Algorithm::Het,
        Algorithm::Oddoml,
        Algorithm::Orroml,
        Algorithm::Bmm,
    ] {
        let plan = schedule_lu(&platform, 40, 80, alg).expect("schedulable");
        let peak = plan.iterations.iter().map(|i| i.enrolled).max().unwrap();
        println!(
            "{:<8} {:>11.1}s {:>14.2} {:>14}",
            plan.algorithm,
            plan.total,
            plan.update_fraction(),
            peak
        );
    }
    println!("\nTrailing updates dominate; the paper's scheduling gains carry over to LU.");
}
