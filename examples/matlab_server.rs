//! The paper's motivating scenario: a MATLAB/SCILAB-style compute server
//! (the master, holding all matrix files) offloads a product to
//! heterogeneous workers — here, for real, through the hand-rolled
//! messaging layer, with the result verified against the sequential
//! oracle.
//!
//! ```sh
//! cargo run --release --example matlab_server
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use stargemm::core::algorithms::{build_policy, Algorithm};
use stargemm::core::Job;
use stargemm::linalg::verify::{tolerance_for, verify_product};
use stargemm::linalg::BlockMatrix;
use stargemm::net::calibrate::measure_block_update_seconds;
use stargemm::net::{NetOptions, NetRuntime};
use stargemm::platform::{Platform, WorkerSpec};

fn main() {
    let q = 64;
    // Benchmark phase (as in the paper): measure this machine's kernel.
    let w = measure_block_update_seconds(q, 10);
    println!("measured block-update time: {w:.2e}s (q = {q})");

    // Three "workers" with emulated heterogeneous links; compute is real.
    let platform = Platform::new(
        "server",
        vec![
            WorkerSpec::new(1.0 * w, w, 80),
            WorkerSpec::new(2.0 * w, w, 48),
            WorkerSpec::new(4.0 * w, w, 24),
        ],
    );

    // The "client request": C ← C + A·B.
    let job = Job::new(10, 12, 14, q);
    let mut rng = StdRng::seed_from_u64(42);
    let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
    let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
    let c0 = BlockMatrix::random(job.r, job.s, job.q, &mut rng);

    // Serve it with the heterogeneous algorithm.
    let mut policy = build_policy(&platform, &job, Algorithm::Het).expect("schedulable");
    let runtime = NetRuntime::new(platform).with_options(NetOptions::default());
    let mut c = c0.clone();
    let t0 = Instant::now();
    let stats = runtime
        .run(&mut policy, &a, &b, &mut c)
        .expect("distributed run succeeds");
    println!(
        "distributed product done in {:.2}s wall ({} block updates on {} workers, port busy {:.0}%)",
        t0.elapsed().as_secs_f64(),
        stats.total_updates,
        stats.enrolled(),
        100.0 * stats.port_utilization()
    );

    // Verify against the sequential oracle.
    let t1 = Instant::now();
    let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
    println!(
        "sequential oracle in {:.2}s; max |Δ| = {:.2e} (tolerance {:.2e}) → {}",
        t1.elapsed().as_secs_f64(),
        report.max_abs_diff,
        report.tolerance,
        if report.passed() {
            "VERIFIED"
        } else {
            "MISMATCH"
        }
    );
    assert!(report.passed());
}
