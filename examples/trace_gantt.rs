//! Render real schedules as ASCII Gantt charts — the runnable version of
//! the paper's Figure 3 (steps of the maximum re-use algorithm), plus a
//! two-worker heterogeneous schedule showing communication/computation
//! overlap and the one-port serialization.
//!
//! ```sh
//! cargo run --release --example trace_gantt
//! ```

use std::rc::Rc;

use stargemm::core::algorithms::{build_policy, Algorithm};
use stargemm::core::maxreuse::max_reuse_policy;
use stargemm::core::Job;
use stargemm::platform::{Platform, WorkerSpec};
use stargemm::sim::trace::{render_gantt, render_obs_gantt};
use stargemm::sim::{ObsSink, RunRecorder, Simulator};

fn main() {
    // Figure 3 flavour: one worker, m = 24 → μ = 4, C split in 4×4
    // chunks; 'C' = C-chunk load, 'b'/'a' = B-row/A-column fragments,
    // '#' = compute, 'R' = result retrieval, '=' = master port busy.
    let job = Job::new(4, 6, 8, 80);
    let platform = Platform::new("single", vec![WorkerSpec::new(1.0, 0.35, 24)]);
    let mut policy = max_reuse_policy(&job, 24);
    let sim = Simulator::new(platform).with_trace(true);
    let (stats, trace) = sim.run_traced(&mut policy).unwrap();
    println!(
        "maximum re-use on one worker (μ = 4): makespan {:.1}s, CCR {:.3}\n",
        stats.makespan,
        stats.ccr()
    );
    println!("{}", render_gantt(&trace, 1, 100));

    // A heterogeneous two-worker schedule: the fast worker overlaps its
    // computation with the slow worker's transfers on the shared port.
    let job = Job::new(4, 8, 8, 80);
    let platform = Platform::new(
        "duo",
        vec![WorkerSpec::new(0.5, 0.5, 40), WorkerSpec::new(2.0, 1.0, 24)],
    );
    let mut policy = build_policy(&platform, &job, Algorithm::Het).unwrap();
    let sim = Simulator::new(platform).with_trace(true);
    let (stats, trace) = sim.run_traced(&mut policy).unwrap();
    println!(
        "Het on two heterogeneous workers: makespan {:.1}s, enrolled {}\n",
        stats.makespan,
        stats.enrolled()
    );
    println!("{}", render_gantt(&trace, 2, 100));
    println!("note the '=' lane never overlaps: the one-port model serializes all transfers.\n");

    // The same schedule through the unified observability recorder,
    // rendered from structured events: per-lane port rows ('>' out,
    // '<' back) and a master decision row. Under a k=2 multi-port
    // contention model a second `port L1` row appears.
    let job = Job::new(4, 8, 8, 80);
    let platform = Platform::new(
        "duo",
        vec![WorkerSpec::new(0.5, 0.5, 40), WorkerSpec::new(2.0, 1.0, 24)],
    );
    let mut policy = build_policy(&platform, &job, Algorithm::Het).unwrap();
    let rec = RunRecorder::shared();
    Simulator::new(platform)
        .run_observed(&mut policy, ObsSink::to(rec.clone()))
        .unwrap();
    let (events, _) = Rc::try_unwrap(rec).ok().unwrap().into_inner().into_parts();
    println!("the same run from recorded observability events:\n");
    println!("{}", render_obs_gantt(&events, 2, 100));
}
