//! Cross-validation of the two execution engines: the `sim`
//! discrete-event simulator and the `net` threaded runtime must realize
//! the *same schedule* for a static policy on a fixed job, and — in the
//! communication-dominated limit where the model's compute term vanishes
//! — the same makespan in wall-clock time.
//!
//! `Algorithm::Het` plans its chunk queues statically from `(platform,
//! job)` alone, so every per-worker communication/compute count must be
//! bit-identical across engines and across repeated runs. The dynamic
//! pool algorithms (ORROML/OMMOML/ODDOML) carve strips by real arrival
//! order and are compared at the volume level in `tests/integration.rs`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stargemm::core::algorithms::{build_policy, Algorithm};
use stargemm::core::Job;
use stargemm::dynamic::model::DynProfile;
use stargemm::dynamic::AdaptiveMaster;
use stargemm::linalg::verify::{tolerance_for, verify_product};
use stargemm::linalg::BlockMatrix;
use stargemm::net::{NetOptions, NetRuntime};
use stargemm::platform::{Platform, WorkerSpec};
use stargemm::sim::{RunStats, Simulator};
use std::time::Duration;

const SEED: u64 = 0xC0FFEE;

fn fixed_job() -> Job {
    Job::new(6, 5, 9, 4)
}

fn fixed_platform() -> Platform {
    Platform::new(
        "cross-val",
        vec![
            WorkerSpec::new(1e-5, 1e-5, 40),
            WorkerSpec::new(2e-5, 2e-5, 24),
            WorkerSpec::new(1e-5, 3e-5, 18),
        ],
    )
}

fn run_sim(platform: &Platform, job: &Job, alg: Algorithm) -> RunStats {
    let mut policy = build_policy(platform, job, alg).unwrap();
    Simulator::new(platform.clone()).run(&mut policy).unwrap()
}

fn run_net(platform: &Platform, job: &Job, alg: Algorithm, time_scale: f64) -> RunStats {
    let mut rng = StdRng::seed_from_u64(SEED);
    let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
    let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
    let mut c = BlockMatrix::zeros(job.r, job.s, job.q);
    let mut policy = build_policy(platform, job, alg).unwrap();
    let rt = NetRuntime::new(platform.clone()).with_options(NetOptions {
        time_scale,
        idle_timeout: Duration::from_secs(20),
        ..Default::default()
    });
    rt.run(&mut policy, &a, &b, &mut c).unwrap()
}

#[test]
fn static_het_schedule_is_identical_across_engines() {
    let (platform, job) = (fixed_platform(), fixed_job());
    let sim = run_sim(&platform, &job, Algorithm::Het);
    let net = run_net(&platform, &job, Algorithm::Het, 1e-6);

    // Global schedule shape.
    assert_eq!(sim.chunks, net.chunks);
    assert_eq!(sim.total_updates, net.total_updates);
    assert_eq!(sim.blocks_to_workers, net.blocks_to_workers);
    assert_eq!(sim.blocks_to_master, net.blocks_to_master);

    // Per-worker schedule: who got which share of the plan.
    assert_eq!(sim.per_worker.len(), net.per_worker.len());
    for (w, (s, n)) in sim.per_worker.iter().zip(&net.per_worker).enumerate() {
        assert_eq!(s.chunks_assigned, n.chunks_assigned, "worker {w} chunks");
        assert_eq!(s.updates, n.updates, "worker {w} updates");
        assert_eq!(s.blocks_rx, n.blocks_rx, "worker {w} blocks in");
        assert_eq!(s.blocks_tx, n.blocks_tx, "worker {w} blocks out");
    }
}

#[test]
fn repeated_runs_are_schedule_deterministic() {
    let (platform, job) = (fixed_platform(), fixed_job());
    let sim_a = run_sim(&platform, &job, Algorithm::Het);
    let sim_b = run_sim(&platform, &job, Algorithm::Het);
    assert_eq!(sim_a, sim_b, "simulator must be bitwise deterministic");

    let net_a = run_net(&platform, &job, Algorithm::Het, 1e-6);
    let net_b = run_net(&platform, &job, Algorithm::Het, 1e-6);
    // Wall-clock fields (makespan, busy_time, port_busy) jitter; the
    // schedule fields must not.
    assert_eq!(net_a.chunks, net_b.chunks);
    assert_eq!(net_a.blocks_to_workers, net_b.blocks_to_workers);
    for (a, b) in net_a.per_worker.iter().zip(&net_b.per_worker) {
        assert_eq!(a.chunks_assigned, b.chunks_assigned);
        assert_eq!(a.updates, b.updates);
        assert_eq!(a.blocks_rx, b.blocks_rx);
        assert_eq!(a.blocks_tx, b.blocks_tx);
    }
}

/// The contention-model subsystem's cross-engine pin: under a bounded
/// multi-port model (k = 2 with a binding backbone), the static `Het`
/// plan realizes the *identical* per-worker schedule in the simulator
/// and in the threaded runtime (whose `Backbone` throttles real links
/// to the same shares), and the threaded product is numerically exact.
#[test]
fn static_multiport_schedule_is_identical_across_engines() {
    let (platform, job) = (fixed_platform(), fixed_job());
    // Backbone below the two fastest links combined, so fair sharing
    // genuinely kicks in (links are 1e5/5e4/1e5 blocks/s).
    let spec = stargemm::netmodel::NetModelSpec::BoundedMultiPort {
        k: 2,
        backbone: Some(1.5e5),
    };
    let mut policy = build_policy(&platform, &job, Algorithm::Het).unwrap();
    let sim = Simulator::new(platform.clone())
        .with_netmodel(spec)
        .run(&mut policy)
        .unwrap();

    let mut rng = StdRng::seed_from_u64(SEED);
    let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
    let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
    let c0 = BlockMatrix::zeros(job.r, job.s, job.q);
    let mut c = c0.clone();
    let mut policy = build_policy(&platform, &job, Algorithm::Het).unwrap();
    let rt = NetRuntime::new(platform).with_options(NetOptions {
        time_scale: 1e-6,
        idle_timeout: Duration::from_secs(20),
        netmodel: spec,
        ..Default::default()
    });
    let net = rt.run(&mut policy, &a, &b, &mut c).unwrap();

    assert_eq!(sim.chunks, net.chunks);
    assert_eq!(sim.total_updates, net.total_updates);
    assert_eq!(sim.blocks_to_workers, net.blocks_to_workers);
    assert_eq!(sim.blocks_to_master, net.blocks_to_master);
    for (w, (s, n)) in sim.per_worker.iter().zip(&net.per_worker).enumerate() {
        assert_eq!(s.chunks_assigned, n.chunks_assigned, "worker {w} chunks");
        assert_eq!(s.updates, n.updates, "worker {w} updates");
        assert_eq!(s.blocks_rx, n.blocks_rx, "worker {w} blocks in");
        assert_eq!(s.blocks_tx, n.blocks_tx, "worker {w} blocks out");
    }
    let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
    assert!(report.passed(), "{report:?}");
}

#[test]
fn makespans_agree_in_the_communication_dominated_limit() {
    // Model compute is negligible (w = 1e-7 s/update) next to transfer
    // costs (c ≈ 1–2 ms/block), and the real q=4 GEMM is likewise
    // instant, so both engines' makespans are dominated by the same
    // one-port transfer schedule. The threaded runtime sleeps for every
    // data transfer; scheduling overhead only adds time — so its
    // wall-clock makespan must bracket the simulated one from above,
    // tightly.
    let job = fixed_job();
    let platform = Platform::new(
        "comm-dominated",
        vec![
            WorkerSpec::new(2e-3, 1e-7, 40),
            WorkerSpec::new(1e-3, 1e-7, 24),
        ],
    );
    let sim = run_sim(&platform, &job, Algorithm::Het);
    let net = run_net(&platform, &job, Algorithm::Het, 1.0);
    assert!(
        net.makespan >= sim.makespan * 0.9,
        "net makespan {} below simulated {} — throttling broken",
        net.makespan,
        sim.makespan
    );
    // Generous upper bound: per-message scheduling overhead varies with
    // host load (shared CI runners especially), and only ever *adds*
    // time. 3× still catches an engine whose throttling accounting is
    // broken while staying robust to a noisy neighbor.
    assert!(
        net.makespan <= sim.makespan * 3.0,
        "net makespan {} far above simulated {} — overhead swamps the model",
        net.makespan,
        sim.makespan
    );
}

/// The dynamic subsystem's static-limit regression: on a constant-trace
/// dynamic platform, `AdaptiveHet` must realize the *identical*
/// per-worker schedule as static `Het` — in both engines. Constant
/// traces mean nothing ever drifts, so the adaptive wrapper must be
/// pure delegation.
#[test]
fn adaptive_het_static_limit_matches_het_in_both_engines() {
    let (platform, job) = (fixed_platform(), fixed_job());
    let profile = DynProfile::constant(platform.len());

    // Simulated engine: bit-identical run statistics (makespan included —
    // constant-trace integration must not perturb a single duration).
    let het_sim = run_sim(&platform, &job, Algorithm::Het);
    let mut adaptive = AdaptiveMaster::adaptive_het(&platform, &job).unwrap();
    let ad_sim = Simulator::new(platform.clone())
        .with_profile(profile.clone())
        .run(&mut adaptive)
        .unwrap();
    assert_eq!(het_sim.makespan, ad_sim.makespan);
    assert_eq!(het_sim.per_worker, ad_sim.per_worker);
    assert_eq!(het_sim.chunks, ad_sim.chunks);
    assert_eq!(het_sim.blocks_to_workers, ad_sim.blocks_to_workers);

    // Threaded engine: same schedule shape as the net Het run, and the
    // numerically exact product. (At this time scale every observation
    // is below the estimator's noise floor, so adaptation stays off —
    // by design, not by luck.)
    let het_net = run_net(&platform, &job, Algorithm::Het, 1e-6);
    let mut rng = StdRng::seed_from_u64(SEED);
    let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
    let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
    let c0 = BlockMatrix::zeros(job.r, job.s, job.q);
    let mut c = c0.clone();
    let mut adaptive = AdaptiveMaster::adaptive_het(&platform, &job).unwrap();
    let rt = NetRuntime::new(platform.clone()).with_options(NetOptions {
        time_scale: 1e-6,
        idle_timeout: Duration::from_secs(20),
        profile: Some(profile),
        ..Default::default()
    });
    let ad_net = rt.run(&mut adaptive, &a, &b, &mut c).unwrap();
    assert_eq!(het_net.chunks, ad_net.chunks);
    assert_eq!(het_net.blocks_to_workers, ad_net.blocks_to_workers);
    assert_eq!(het_net.blocks_to_master, ad_net.blocks_to_master);
    for (w, (h, d)) in het_net
        .per_worker
        .iter()
        .zip(&ad_net.per_worker)
        .enumerate()
    {
        assert_eq!(h.chunks_assigned, d.chunks_assigned, "worker {w} chunks");
        assert_eq!(h.updates, d.updates, "worker {w} updates");
        assert_eq!(h.blocks_rx, d.blocks_rx, "worker {w} blocks in");
        assert_eq!(h.blocks_tx, d.blocks_tx, "worker {w} blocks out");
    }
    let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
    assert!(report.passed(), "{report:?}");
}

/// Worker churn in the threaded runtime: a worker crashes mid-run, its
/// chunks are re-planned, and the distributed product is still exact —
/// real data was lost and really recomputed.
#[test]
fn adaptive_net_run_survives_a_crash_with_an_exact_product() {
    let job = Job::new(6, 5, 9, 4);
    // Slow enough links that the crash at model-time 0.2 s lands
    // mid-run (time_scale 1: model time = wall time).
    let platform = Platform::new(
        "net-crash",
        vec![
            WorkerSpec::new(1e-3, 1e-6, 40),
            WorkerSpec::new(1e-3, 1e-6, 40),
            WorkerSpec::new(2e-3, 2e-6, 24),
        ],
    );
    let profile = DynProfile::new(vec![
        stargemm::platform::WorkerDyn::new(
            stargemm::platform::Trace::default(),
            stargemm::platform::Trace::default(),
            vec![(0.2, f64::INFINITY)],
        ),
        stargemm::platform::WorkerDyn::stable(),
        stargemm::platform::WorkerDyn::stable(),
    ]);
    let mut rng = StdRng::seed_from_u64(SEED);
    let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
    let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
    let c0 = BlockMatrix::random(job.r, job.s, job.q, &mut rng);
    let mut c = c0.clone();
    let mut adaptive = AdaptiveMaster::adaptive_het(&platform, &job).unwrap();
    let rt = NetRuntime::new(platform).with_options(NetOptions {
        time_scale: 1.0,
        idle_timeout: Duration::from_secs(20),
        profile: Some(profile),
        ..Default::default()
    });
    let stats = rt.run(&mut adaptive, &a, &b, &mut c).unwrap();
    assert_eq!(adaptive.stats().crashes, 1, "crash must have landed");
    assert!(adaptive.stats().reassigned_chunks > 0);
    let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
    assert!(report.passed(), "{report:?}");
    // The lost worker's partial work was redone elsewhere.
    assert!(stats.total_updates >= job.total_updates());
}

/// The DAG subsystem's cross-engine pin: a tiled-LU task graph
/// dispatched by the critical-path-aware `DagMaster` realizes the
/// *identical* per-worker schedule in the simulator and in the threaded
/// runtime, and the threaded run's virtual GEMM (each task one `1 × w`
/// strip of C) is numerically exact. Ready-frontier dispatch reacts to
/// `RetrieveDone` events, so this also pins that both engines deliver
/// retrievals in the same one-port order.
#[test]
fn dag_schedule_is_identical_across_engines() {
    let platform = fixed_platform();
    let (dag, _) = stargemm::dag::lu_dag(3);
    let q = 4;
    let job = dag.virtual_job(q);

    let mut sim_master = stargemm::dag::DagMaster::new("xval-dag", &platform, dag.clone(), q, 2);
    let sim = Simulator::new(platform.clone())
        .run(&mut sim_master)
        .unwrap();
    assert!(sim_master.is_complete());
    assert!(dag.is_topological(sim_master.completion_order()));

    let mut rng = StdRng::seed_from_u64(SEED);
    let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
    let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
    let c0 = BlockMatrix::zeros(job.r, job.s, job.q);
    let mut c = c0.clone();
    let mut net_master = stargemm::dag::DagMaster::new("xval-dag", &platform, dag.clone(), q, 2);
    let rt = NetRuntime::new(platform).with_options(NetOptions {
        time_scale: 1e-6,
        idle_timeout: Duration::from_secs(20),
        ..Default::default()
    });
    let net = rt.run(&mut net_master, &a, &b, &mut c).unwrap();
    assert!(net_master.is_complete());
    assert!(dag.is_topological(net_master.completion_order()));

    assert_eq!(sim.chunks, net.chunks);
    assert_eq!(sim.total_updates, net.total_updates);
    assert_eq!(sim.blocks_to_workers, net.blocks_to_workers);
    assert_eq!(sim.blocks_to_master, net.blocks_to_master);
    for (w, (s, n)) in sim.per_worker.iter().zip(&net.per_worker).enumerate() {
        assert_eq!(s.chunks_assigned, n.chunks_assigned, "worker {w} chunks");
        assert_eq!(s.updates, n.updates, "worker {w} updates");
        assert_eq!(s.blocks_rx, n.blocks_rx, "worker {w} blocks in");
        assert_eq!(s.blocks_tx, n.blocks_tx, "worker {w} blocks out");
    }
    let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
    assert!(report.passed(), "{report:?}");
}

/// Crash during the trailing updates of a threaded DAG run: a worker
/// dies mid-graph, its in-flight tasks return to the ready frontier with
/// fresh chunk ids, and the finished virtual GEMM is still exact — the
/// lost strips of C were really recomputed elsewhere.
#[test]
fn dag_net_run_survives_a_crash_with_an_exact_product() {
    // Slow links (1 ms/block at time_scale 1) stretch the run to
    // ~100 ms of wall time, so the crash at 0.03 s lands squarely in
    // the trailing-update phase of the first panels.
    let platform = Platform::new(
        "dag-crash",
        vec![
            WorkerSpec::new(1e-3, 1e-6, 40),
            WorkerSpec::new(1e-3, 1e-6, 40),
            WorkerSpec::new(2e-3, 2e-6, 24),
        ],
    );
    let (dag, _) = stargemm::dag::lu_dag(4);
    let q = 4;
    let job = dag.virtual_job(q);
    let profile = DynProfile::new(vec![
        stargemm::platform::WorkerDyn::new(
            stargemm::platform::Trace::default(),
            stargemm::platform::Trace::default(),
            vec![(0.03, f64::INFINITY)],
        ),
        stargemm::platform::WorkerDyn::stable(),
        stargemm::platform::WorkerDyn::stable(),
    ]);
    let mut rng = StdRng::seed_from_u64(SEED);
    let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
    let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
    let c0 = BlockMatrix::zeros(job.r, job.s, job.q);
    let mut c = c0.clone();
    let mut master = stargemm::dag::DagMaster::new("dag-crash", &platform, dag.clone(), q, 2);
    let rt = NetRuntime::new(platform).with_options(NetOptions {
        time_scale: 1.0,
        idle_timeout: Duration::from_secs(20),
        profile: Some(profile),
        ..Default::default()
    });
    let stats = rt.run(&mut master, &a, &b, &mut c).unwrap();
    assert!(master.is_complete());
    assert!(dag.is_topological(master.completion_order()));
    let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
    assert!(report.passed(), "{report:?}");
    // Every task retrieved exactly once despite the re-dispatches.
    assert_eq!(stats.chunks as usize, dag.len());
    assert!(stats.total_updates >= dag.total_updates());
}

/// The reactor's scale pin: on a 512-worker star — far past what the
/// thread-per-worker engine is meant for, and exactly what the reactor
/// exists for — the static `Het` plan realizes the *identical*
/// per-worker schedule in the simulator and in the (default, reactor)
/// net engine, and the product is exact. The reactor's virtual clock
/// makes this deterministic: the schedule is a pure function of the
/// projected transfer timeline, never of host load.
#[test]
fn wide_star_schedule_is_identical_across_engines() {
    let q = 2;
    let job = Job::new(8, 2, 64, q);
    // Two memory tiers so the heterogeneous selection has real work to
    // do across the wide star.
    let mut specs = Vec::new();
    for i in 0..512 {
        specs.push(if i % 2 == 0 {
            WorkerSpec::new(1e-6, 1e-6, 24)
        } else {
            WorkerSpec::new(2e-6, 2e-6, 12)
        });
    }
    let platform = Platform::new("wide-star", specs);

    let sim = run_sim(&platform, &job, Algorithm::Het);

    let mut rng = StdRng::seed_from_u64(SEED);
    let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
    let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
    let c0 = BlockMatrix::zeros(job.r, job.s, job.q);
    let mut c = c0.clone();
    let mut policy = build_policy(&platform, &job, Algorithm::Het).unwrap();
    let rt = NetRuntime::new(platform.clone()).with_options(NetOptions {
        time_scale: 1e-7,
        idle_timeout: Duration::from_secs(20),
        ..Default::default()
    });
    let net = rt.run(&mut policy, &a, &b, &mut c).unwrap();

    assert_eq!(sim.chunks, net.chunks);
    assert_eq!(sim.total_updates, net.total_updates);
    assert_eq!(sim.blocks_to_workers, net.blocks_to_workers);
    assert_eq!(sim.blocks_to_master, net.blocks_to_master);
    assert_eq!(sim.per_worker.len(), net.per_worker.len());
    for (w, (s, n)) in sim.per_worker.iter().zip(&net.per_worker).enumerate() {
        assert_eq!(s.chunks_assigned, n.chunks_assigned, "worker {w} chunks");
        assert_eq!(s.updates, n.updates, "worker {w} updates");
        assert_eq!(s.blocks_rx, n.blocks_rx, "worker {w} blocks in");
        assert_eq!(s.blocks_tx, n.blocks_tx, "worker {w} blocks out");
    }
    let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
    assert!(report.passed(), "{report:?}");
}

/// Churn under a concurrent contention model on the reactor: a worker
/// crashes mid-run while transfers share the star through a bounded
/// multi-port (k = 2) model, the lost chunks are re-planned, and the
/// finished product is exact. This is the combination the threaded
/// engine never supported well (helper wire threads + crashes + shared
/// backbone); on the reactor it is one state machine.
#[test]
fn adaptive_multiport_reactor_run_survives_a_crash_with_an_exact_product() {
    let job = Job::new(6, 5, 9, 4);
    let platform = Platform::new(
        "net-crash-mp",
        vec![
            WorkerSpec::new(1e-3, 1e-6, 40),
            WorkerSpec::new(1e-3, 1e-6, 40),
            WorkerSpec::new(2e-3, 2e-6, 24),
        ],
    );
    let profile = DynProfile::new(vec![
        stargemm::platform::WorkerDyn::new(
            stargemm::platform::Trace::default(),
            stargemm::platform::Trace::default(),
            vec![(0.2, f64::INFINITY)],
        ),
        stargemm::platform::WorkerDyn::stable(),
        stargemm::platform::WorkerDyn::stable(),
    ]);
    let mut rng = StdRng::seed_from_u64(SEED);
    let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
    let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
    let c0 = BlockMatrix::random(job.r, job.s, job.q, &mut rng);
    let mut c = c0.clone();
    let mut adaptive = AdaptiveMaster::adaptive_het(&platform, &job).unwrap();
    let rt = NetRuntime::new(platform).with_options(NetOptions {
        time_scale: 1.0,
        idle_timeout: Duration::from_secs(20),
        profile: Some(profile),
        netmodel: stargemm::netmodel::NetModelSpec::BoundedMultiPort {
            k: 2,
            backbone: Some(1.5e3),
        },
        ..Default::default()
    });
    let stats = rt.run(&mut adaptive, &a, &b, &mut c).unwrap();
    assert_eq!(adaptive.stats().crashes, 1, "crash must have landed");
    assert!(adaptive.stats().reassigned_chunks > 0);
    let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
    assert!(report.passed(), "{report:?}");
    assert!(stats.total_updates >= job.total_updates());
}

#[test]
fn cross_validated_run_still_computes_the_right_product() {
    // The schedule comparison is only meaningful if the threaded run is
    // actually doing the arithmetic it claims: re-run with the fixed
    // seed and verify C against the sequential oracle.
    let (platform, job) = (fixed_platform(), fixed_job());
    let mut rng = StdRng::seed_from_u64(SEED);
    let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
    let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
    let c0 = BlockMatrix::zeros(job.r, job.s, job.q);
    let mut c = c0.clone();
    let mut policy = build_policy(&platform, &job, Algorithm::Het).unwrap();
    let rt = NetRuntime::new(platform).with_options(NetOptions {
        time_scale: 1e-6,
        ..Default::default()
    });
    rt.run(&mut policy, &a, &b, &mut c).unwrap();
    let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
    assert!(report.passed(), "{report:?}");
}
