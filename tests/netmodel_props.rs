//! Property-based checks of the network-contention-model subsystem.
//!
//! Three statements are pinned on random instances:
//!
//! 1. **The refactor is behavior-preserving**: routing the paper's
//!    one-port model through the `ContentionModel` trait (explicitly, or
//!    as `BoundedMultiPort { k: 1 }`) reproduces the default engine's
//!    run statistics *and* event trace byte for byte — on static and on
//!    dynamic (jittery) platforms alike. The `exp_fig7`/`exp_dynamic`
//!    golden snapshots (`crates/bench/tests/golden.rs`) pin the same
//!    fact end-to-end against the pre-refactor artifacts.
//! 2. **No schedule beats the generalized steady-state bound** (a
//!    theorem): under every contention model, the achieved makespan is
//!    at least `U / ρ*(model)` where `ρ*` solves the generalized LP
//!    (per-port + backbone capacity rows) of `core::steady`.
//! 3. **Capacity monotonicity of the bound**: adding ports or backbone
//!    never lowers `ρ*`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stargemm::core::algorithms::{build_policy, Algorithm};
use stargemm::core::steady::{model_makespan_lower_bound, model_throughput};
use stargemm::core::Job;
use stargemm::netmodel::NetModelSpec;
use stargemm::platform::dynamic::{DynProfile, Trace, WorkerDyn};
use stargemm::platform::{Platform, WorkerSpec};
use stargemm::sim::Simulator;

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop::collection::vec(
        (0.05f64..2.0, 0.05f64..2.0, 16usize..200).prop_map(|(c, w, m)| WorkerSpec::new(c, w, m)),
        1..5,
    )
    .prop_map(|specs| Platform::new("netmodel-props", specs))
}

fn arb_job() -> impl Strategy<Value = Job> {
    (2usize..8, 2usize..8, 2usize..10).prop_map(|(r, t, s)| Job::new(r, t, s, 4))
}

/// A mild random jitter profile (scales in [0.5, 2.5], no downtime).
fn jitter_profile(platform: &Platform, seed: u64) -> DynProfile {
    let mut rng = StdRng::seed_from_u64(seed);
    DynProfile::new(
        (0..platform.len())
            .map(|_| {
                let mut points = vec![(0.0, 1.0)];
                let mut t = 0.0;
                for _ in 0..3 {
                    t += rng.random_range(5.0..40.0);
                    points.push((t, rng.random_range(0.5..2.5)));
                }
                WorkerDyn::new(Trace::new(points), Trace::default(), vec![])
            })
            .collect(),
    )
}

/// A spread of valid specs derived from the platform's link rates.
fn model_specs(platform: &Platform) -> Vec<NetModelSpec> {
    let fastest: f64 = platform
        .workers()
        .iter()
        .map(|s| 1.0 / s.c)
        .fold(0.0, f64::max);
    vec![
        NetModelSpec::OnePort,
        NetModelSpec::BoundedMultiPort {
            k: 2,
            backbone: None,
        },
        NetModelSpec::BoundedMultiPort {
            k: 3,
            backbone: Some(1.5 * fastest),
        },
        NetModelSpec::FairShare {
            backbone: 0.75 * fastest,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Statement 1, static platforms: the explicit one-port spec and the
    /// k = 1 multi-port are bitwise the default engine.
    #[test]
    fn oneport_through_the_trait_is_bitwise_identical(
        platform in arb_platform(),
        job in arb_job(),
    ) {
        let run = |spec: Option<NetModelSpec>| {
            let mut sim = Simulator::new(platform.clone()).with_trace(true);
            if let Some(spec) = spec {
                sim = sim.with_netmodel(spec);
            }
            build_policy(&platform, &job, Algorithm::Het)
                .ok()
                .map(|mut p| sim.run_traced(&mut p).expect("run completes"))
        };
        let default = run(None);
        let explicit = run(Some(NetModelSpec::OnePort));
        let k1 = run(Some(NetModelSpec::BoundedMultiPort { k: 1, backbone: None }));
        prop_assert_eq!(&default, &explicit);
        prop_assert_eq!(&default, &k1);
    }

    /// Statement 1, dynamic platforms: trace integration composes with
    /// the trait without perturbing a single duration.
    #[test]
    fn oneport_trait_is_bitwise_identical_under_jitter(
        platform in arb_platform(),
        job in arb_job(),
        seed in 0u64..1 << 40,
    ) {
        let profile = jitter_profile(&platform, seed);
        let run = |spec: Option<NetModelSpec>| {
            let mut sim = Simulator::new(platform.clone())
                .with_profile(profile.clone())
                .with_trace(true);
            if let Some(spec) = spec {
                sim = sim.with_netmodel(spec);
            }
            build_policy(&platform, &job, Algorithm::Het)
                .ok()
                .map(|mut p| sim.run_traced(&mut p).expect("run completes"))
        };
        prop_assert_eq!(run(None), run(Some(NetModelSpec::OnePort)));
    }

    /// Statement 2: no simulated makespan beats the model-aware
    /// generalized steady-state lower bound.
    #[test]
    fn no_schedule_beats_the_generalized_bound(
        platform in arb_platform(),
        job in arb_job(),
    ) {
        for spec in model_specs(&platform) {
            let Ok(mut policy) = build_policy(&platform, &job, Algorithm::Het) else {
                return Ok(()); // no feasible layout on this draw
            };
            let stats = Simulator::new(platform.clone())
                .with_netmodel(spec)
                .run(&mut policy)
                .expect("run completes");
            let bound = model_makespan_lower_bound(&platform, &job, &spec);
            prop_assert!(
                stats.makespan >= bound * (1.0 - 1e-9),
                "{spec:?}: makespan {} beats the bound {bound}",
                stats.makespan
            );
        }
    }

    /// Statement 3: more ports / more backbone never lower ρ*.
    #[test]
    fn bound_is_monotone_in_capacity(platform in arb_platform(), r in 2usize..12) {
        let fastest: f64 = platform
            .workers()
            .iter()
            .map(|s| 1.0 / s.c)
            .fold(0.0, f64::max);
        let mut prev = model_throughput(&platform, r, &NetModelSpec::OnePort);
        for k in 1..=4 {
            let t = model_throughput(
                &platform,
                r,
                &NetModelSpec::BoundedMultiPort { k, backbone: None },
            );
            prop_assert!(t >= prev * (1.0 - 1e-9), "k={k}: {t} < {prev}");
            prev = t;
        }
        let tight = model_throughput(
            &platform,
            r,
            &NetModelSpec::FairShare { backbone: 0.5 * fastest },
        );
        let loose = model_throughput(
            &platform,
            r,
            &NetModelSpec::FairShare { backbone: 2.0 * fastest },
        );
        prop_assert!(loose >= tight * (1.0 - 1e-9), "{loose} < {tight}");
    }
}
