//! Perfetto export validity: the `--trace-out` artifact must load in
//! the Perfetto UI, so the exported JSON is parsed back with the
//! in-tree parser and checked structurally — legal `trace_event`
//! phases, spans that never overlap within one track, and intervals
//! that agree exactly with the legacy `TraceEntry` schedule on a
//! pinned scenario.

use std::rc::Rc;

use serde::json::{from_str, Value};
use stargemm::core::algorithms::{build_policy, Algorithm};
use stargemm::core::Job;
use stargemm::obs::{perfetto_trace, ObsEvent, ObsSink, RunRecorder};
use stargemm::platform::{Platform, WorkerSpec};
use stargemm::sim::trace::{TraceEntry, TraceKind};
use stargemm::sim::Simulator;
use stargemm::stream::{JobRequest, MultiJobMaster, StreamConfig};

/// The pinned scenario: Het on a two-worker heterogeneous star — small
/// enough to stay fast, big enough to exercise sends, retrieves and
/// overlapping compute.
fn pinned_gemm() -> (Platform, Job) {
    let platform = Platform::new(
        "perfetto-pin",
        vec![WorkerSpec::new(0.5, 0.5, 40), WorkerSpec::new(2.0, 1.0, 24)],
    );
    (platform, Job::new(4, 8, 8, 80))
}

/// Runs the pinned scenario under both recorders at once: the legacy
/// interval trace and the structured event log.
fn pinned_run() -> (Vec<TraceEntry>, Vec<ObsEvent>) {
    let (platform, job) = pinned_gemm();
    let mut policy = build_policy(&platform, &job, Algorithm::Het).unwrap();
    let rec = RunRecorder::shared();
    let (_, trace) = Simulator::new(platform)
        .with_trace(true)
        .run_traced_observed(&mut policy, ObsSink::to(rec.clone()))
        .unwrap();
    let Ok(rec) = Rc::try_unwrap(rec) else {
        unreachable!("recorder has one owner after the run")
    };
    let (events, _) = rec.into_inner().into_parts();
    (trace, events)
}

/// All `ph: "X"` spans of a parsed document as `(pid, tid, ts, dur)`.
fn spans(doc: &Value) -> Vec<(u64, u64, f64, f64)> {
    doc.get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .map(|e| {
            (
                e.get("pid").and_then(Value::as_u64).expect("pid"),
                e.get("tid").and_then(Value::as_u64).expect("tid"),
                e.get("ts").and_then(Value::as_f64).expect("ts"),
                e.get("dur").and_then(Value::as_f64).expect("dur"),
            )
        })
        .collect()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn export_parses_back_with_legal_phases_and_named_tracks() {
    let (_, events) = pinned_run();
    let rendered = perfetto_trace(&events).render_pretty();
    let doc = from_str(&rendered).expect("exported JSON parses");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let evs = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!evs.is_empty());
    let mut names = Vec::new();
    for e in evs {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .expect("every event has ph");
        assert!(
            matches!(ph, "M" | "i" | "X"),
            "illegal trace_event phase {ph:?}"
        );
        assert!(e.get("pid").and_then(Value::as_u64).is_some());
        match ph {
            "X" => {
                assert!(e.get("ts").and_then(Value::as_f64).is_some());
                assert!(e.get("dur").and_then(Value::as_f64).expect("dur") >= 0.0);
            }
            "i" => assert_eq!(e.get("s").and_then(Value::as_str), Some("t")),
            _ => {}
        }
        if ph == "M" {
            if let Some(n) = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
            {
                names.push(n.to_string());
            }
        }
    }
    for expected in [
        "port", "workers", "master", "lane 0", "w0 send", "w0 recv", "w0 cpu",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing track name {expected:?} in {names:?}"
        );
    }
}

#[test]
fn spans_within_one_track_never_overlap() {
    let (_, events) = pinned_run();
    let doc = from_str(&perfetto_trace(&events).render_pretty()).unwrap();
    let mut by_track: std::collections::BTreeMap<(u64, u64), Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    for (pid, tid, ts, dur) in spans(&doc) {
        by_track.entry((pid, tid)).or_default().push((ts, dur));
    }
    assert!(by_track.len() >= 3, "expected port + comm + cpu tracks");
    for ((pid, tid), mut track) in by_track {
        track.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for pair in track.windows(2) {
            let (ts0, dur0) = pair[0];
            let (ts1, _) = pair[1];
            assert!(
                ts0 + dur0 <= ts1 + 1e-6,
                "track pid={pid} tid={tid}: span [{ts0}, {}] overlaps the next at {ts1}",
                ts0 + dur0
            );
        }
    }
}

#[test]
fn exported_intervals_match_the_legacy_trace() {
    let (trace, events) = pinned_run();
    let doc = from_str(&perfetto_trace(&events).render_pretty()).unwrap();
    let all = spans(&doc);

    // Port occupancy (pid 1): exactly the legacy transfer intervals.
    let mut port: Vec<(f64, f64)> = all
        .iter()
        .filter(|(pid, ..)| *pid == 1)
        .map(|&(_, _, ts, dur)| (ts, dur))
        .collect();
    let mut legacy_port: Vec<(f64, f64)> = trace
        .iter()
        .filter(|t| t.uses_port())
        .map(|t| (t.start * 1e6, (t.end - t.start) * 1e6))
        .collect();
    port.sort_by(|a, b| a.partial_cmp(b).unwrap());
    legacy_port.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(port.len(), legacy_port.len(), "port span count");
    for (got, want) in port.iter().zip(&legacy_port) {
        assert!(
            close(got.0, want.0) && close(got.1, want.1),
            "port interval {got:?} vs legacy {want:?}"
        );
    }

    // Compute (pid 2, cpu tids ≡ 0 mod 3): exactly the legacy steps.
    let mut cpu: Vec<(f64, f64)> = all
        .iter()
        .filter(|(pid, tid, ..)| *pid == 2 && tid % 3 == 0)
        .map(|&(_, _, ts, dur)| (ts, dur))
        .collect();
    let mut legacy_cpu: Vec<(f64, f64)> = trace
        .iter()
        .filter(|t| matches!(t.kind, TraceKind::Compute { .. }))
        .map(|t| (t.start * 1e6, (t.end - t.start) * 1e6))
        .collect();
    cpu.sort_by(|a, b| a.partial_cmp(b).unwrap());
    legacy_cpu.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(cpu.len(), legacy_cpu.len(), "cpu span count");
    for (got, want) in cpu.iter().zip(&legacy_cpu) {
        assert!(
            close(got.0, want.0) && close(got.1, want.1),
            "cpu interval {got:?} vs legacy {want:?}"
        );
    }
}

/// Stream runs add job lifecycle tracks: every admitted job gets a
/// `job N` span from arrival to completion, and the jobs process is
/// named.
#[test]
fn stream_export_carries_job_tracks() {
    let platform = Platform::new(
        "perfetto-stream",
        vec![WorkerSpec::new(0.2, 0.1, 80), WorkerSpec::new(0.4, 0.2, 60)],
    );
    let requests: Vec<JobRequest> = (0..3)
        .map(|i| JobRequest {
            id: i as u32,
            tenant: 0,
            weight: 1.0,
            job: Job::new(3, 2, 4, 2),
            arrival: 2.0 * i as f64,
        })
        .collect();
    let rec = RunRecorder::shared();
    let sink = ObsSink::to(rec.clone());
    let mut policy = MultiJobMaster::new(&platform, &requests, StreamConfig::default())
        .unwrap()
        .with_obs(sink.clone());
    Simulator::new(platform)
        .with_arrivals(MultiJobMaster::arrival_plan(&requests))
        .run_observed(&mut policy, sink)
        .unwrap();
    drop(policy);
    let Ok(rec) = Rc::try_unwrap(rec) else {
        unreachable!("recorder has one owner after the run")
    };
    let (events, _) = rec.into_inner().into_parts();
    let doc = from_str(&perfetto_trace(&events).render_pretty()).unwrap();
    let job_spans: Vec<_> = spans(&doc)
        .into_iter()
        .filter(|(pid, ..)| *pid == 3)
        .collect();
    assert_eq!(
        job_spans.len(),
        requests.len(),
        "one lifecycle span per job"
    );
    let rendered = perfetto_trace(&events).render();
    assert!(rendered.contains("\"jobs\""));
    assert!(rendered.contains("\"job_admitted\""));
    assert!(rendered.contains("\"lp_resolve\""));
}
