//! Observability layer invariants: attaching the run recorder can
//! *observe* but never *perturb*.
//!
//! The hard contract of `crates/obs` is that `run_observed(...)` with a
//! live recorder produces byte-identical `RunStats` and schedules to the
//! same run with the sink off, across every engine regime (static
//! platforms, cost-jittery platforms, worker churn, multi-tenant
//! streams). Byte comparison goes through `{:?}` — floats render
//! shortest-round-trip, so equal strings mean bit-equal values.
//!
//! The histogram quantile estimator is additionally pinned against an
//! exact nearest-rank oracle over arbitrary sample sets.

use std::rc::Rc;

use proptest::prelude::*;
use stargemm::core::algorithms::build_policy;
use stargemm::core::Job;
use stargemm::dynamic::model::DynPlatform;
use stargemm::dynamic::{random_scenario, AdaptiveMaster, ScenarioConfig};
use stargemm::obs::{Attribution, Histogram, ObsEvent, ObsSink, RunRecorder};
use stargemm::platform::{Platform, WorkerSpec};
use stargemm::sim::Simulator;
use stargemm::stream::{
    ArrivalProcess, JobRequest, MultiJobMaster, StreamConfig, TenantSpec, WorkloadSpec,
};

fn arb_spec() -> impl Strategy<Value = WorkerSpec> {
    (0.05f64..4.0, 0.05f64..4.0, 16usize..400).prop_map(|(c, w, m)| WorkerSpec::new(c, w, m))
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop::collection::vec(arb_spec(), 1..5).prop_map(|specs| Platform::new("obs-prop", specs))
}

fn arb_job() -> impl Strategy<Value = Job> {
    (1usize..8, 1usize..6, 1usize..10).prop_map(|(r, t, s)| Job::new(r, t, s, 4))
}

/// Jitter (regime 0/1) and churn (regime 2) scenarios, mirroring the
/// determinism suite so the obs contract covers the same state space.
fn arb_scenario() -> impl Strategy<Value = (DynPlatform, Job)> {
    (arb_platform(), arb_job(), 0u64..1_000, 0usize..3).prop_map(|(p, job, seed, regime)| {
        let cfg = match regime {
            0 => ScenarioConfig {
                c_jitter: 1.0,
                w_jitter: 1.0,
                crash_prob: 0.0,
                segment_len: 10.0,
                horizon: 100.0,
                rejoin_prob: 0.0,
            },
            1 => ScenarioConfig {
                c_jitter: 2.0,
                w_jitter: 1.5,
                crash_prob: 0.0,
                segment_len: 15.0,
                horizon: 300.0,
                rejoin_prob: 0.0,
            },
            _ => ScenarioConfig {
                c_jitter: 1.5,
                w_jitter: 1.5,
                crash_prob: 0.15,
                segment_len: 20.0,
                horizon: 400.0,
                rejoin_prob: 0.5,
            },
        };
        (random_scenario(&p.clone(), cfg, seed), job)
    })
}

/// Byte form of one run: stats plus the full interval schedule,
/// optionally with a live recorder attached. Returns the byte string
/// and the number of events the recorder captured.
fn run_bytes(
    sim: &Simulator,
    policy: &mut dyn stargemm::sim::MasterPolicy,
    on: bool,
) -> (String, usize) {
    let rec = RunRecorder::shared();
    let sink = if on {
        ObsSink::to(rec.clone())
    } else {
        ObsSink::off()
    };
    let out = match sim
        .clone()
        .with_trace(true)
        .run_traced_observed(policy, sink)
    {
        Ok((stats, trace)) => format!("{stats:?}\n{trace:?}"),
        Err(e) => format!("error: {e:?}"),
    };
    let Ok(rec) = Rc::try_unwrap(rec) else {
        unreachable!("recorder has one owner after the run")
    };
    let (events, _) = rec.into_inner().into_parts();
    (out, events.len())
}

/// Drains a recorder back to its captured event log (the recorder must
/// be the sole remaining owner).
fn drain(rec: Rc<std::cell::RefCell<RunRecorder>>) -> Vec<ObsEvent> {
    let Ok(rec) = Rc::try_unwrap(rec) else {
        unreachable!("recorder has one owner after the run")
    };
    rec.into_inner().into_parts().0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Static platforms: the recorder is invisible to stats and trace,
    /// and a successful run always emits events.
    #[test]
    fn static_recorder_on_off_byte_identical(platform in arb_platform(), job in arb_job(),
                                             ai in 0usize..7) {
        let alg = stargemm::core::algorithms::Algorithm::all()[ai];
        prop_assume!(build_policy(&platform, &job, alg).is_ok());
        let sim = Simulator::new(platform.clone());
        let mut p_off = build_policy(&platform, &job, alg).unwrap();
        let mut p_on = build_policy(&platform, &job, alg).unwrap();
        let (off, n_off) = run_bytes(&sim, &mut p_off, false);
        let (on, n_on) = run_bytes(&sim, &mut p_on, true);
        prop_assert_eq!(off, on);
        prop_assert_eq!(n_off, 0, "an off sink must record nothing");
        prop_assert!(n_on > 0, "a live sink on a completed run must record events");
    }

    /// Jitter + churn: crashes, rejoins and time-varying costs do not
    /// open any recorder-visible side channel either.
    #[test]
    fn dynamic_recorder_on_off_byte_identical(scenario in arb_scenario()) {
        let (dp, job) = scenario;
        prop_assume!(AdaptiveMaster::adaptive_het(&dp.base, &job).is_ok());
        let sim = Simulator::new_dyn(dp.clone());
        let mut p_off = AdaptiveMaster::adaptive_het(&dp.base, &job).unwrap();
        let mut p_on = AdaptiveMaster::adaptive_het(&dp.base, &job).unwrap();
        let (off, _) = run_bytes(&sim, &mut p_off, false);
        let (on, _) = run_bytes(&sim, &mut p_on, true);
        prop_assert_eq!(off, on);
    }

    /// Multi-tenant streams: the `MultiJobMaster` emits LP re-solves and
    /// admission events through its own sink — still zero perturbation.
    #[test]
    fn stream_recorder_on_off_byte_identical(seed in 0u64..500, jobs in 2usize..8,
                                             mean in 1.0f64..40.0) {
        let platform = Platform::new(
            "obs-stream",
            vec![
                WorkerSpec::new(0.20, 0.10, 80),
                WorkerSpec::new(0.30, 0.15, 60),
                WorkerSpec::new(0.50, 0.30, 40),
            ],
        );
        let requests = WorkloadSpec {
            tenants: vec![
                TenantSpec::new("light", 1.0, vec![Job::new(3, 2, 4, 2)]),
                TenantSpec::new("heavy", 2.0, vec![Job::new(5, 3, 6, 2)]),
            ],
            arrivals: ArrivalProcess::Open { mean_interarrival: mean },
            jobs,
            seed,
        }
        .generate();
        prop_assume!(MultiJobMaster::new(&platform, &requests, StreamConfig::default()).is_ok());

        let run = |on: bool| {
            let rec = RunRecorder::shared();
            let sink = if on { ObsSink::to(rec.clone()) } else { ObsSink::off() };
            let mut policy = MultiJobMaster::new(&platform, &requests, StreamConfig::default())
                .unwrap()
                .with_obs(sink.clone());
            let out = match Simulator::new(platform.clone())
                .with_trace(true)
                .with_arrivals(MultiJobMaster::arrival_plan(&requests))
                .run_traced_observed(&mut policy, sink)
            {
                Ok((stats, trace)) => format!("{stats:?}\n{trace:?}"),
                Err(e) => format!("error: {e:?}"),
            };
            drop(policy); // releases the policy's clone of the sink
            let Ok(rec) = Rc::try_unwrap(rec) else {
                unreachable!("recorder has one owner after the run")
            };
            let (events, _) = rec.into_inner().into_parts();
            (out, events.len())
        };
        let (off, n_off) = run(false);
        let (on, _) = run(true);
        prop_assert_eq!(off, on);
        prop_assert_eq!(n_off, 0);
    }

    /// The reactor runtime joins the zero-perturbation contract: a live
    /// recorder must not change one schedule counter or result byte.
    /// The reactor's virtual clock makes its schedule deterministic, so
    /// the comparison covers every deterministic field (wall-clock
    /// durations are real time, not schedule, and are excluded).
    #[test]
    fn reactor_recorder_on_off_schedule_identical(platform in arb_platform(), job in arb_job(),
                                                  ai in 0usize..7, seed in 0u64..1_000) {
        use rand::SeedableRng;
        use stargemm::net::{NetOptions, NetRuntime};
        let alg = stargemm::core::algorithms::Algorithm::all()[ai];
        prop_assume!(build_policy(&platform, &job, alg).is_ok());

        let run = |on: bool| {
            let rec = RunRecorder::shared();
            let sink = if on { ObsSink::to(rec.clone()) } else { ObsSink::off() };
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = stargemm::linalg::BlockMatrix::random(job.r, job.t, job.q, &mut rng);
            let b = stargemm::linalg::BlockMatrix::random(job.t, job.s, job.q, &mut rng);
            let mut c = stargemm::linalg::BlockMatrix::zeros(job.r, job.s, job.q);
            let mut policy = build_policy(&platform, &job, alg).unwrap();
            let rt = NetRuntime::new(platform.clone()).with_options(NetOptions {
                time_scale: 1e-7,
                ..Default::default()
            });
            let out = match rt.run_observed(&mut policy, &a, &b, &mut c, sink) {
                Ok(stats) => {
                    let per_worker: Vec<_> = stats
                        .per_worker
                        .iter()
                        .map(|w| (w.chunks_assigned, w.updates, w.blocks_rx, w.blocks_tx))
                        .collect();
                    format!(
                        "{} {} {} {} {:?}\n{:?}",
                        stats.chunks,
                        stats.total_updates,
                        stats.blocks_to_workers,
                        stats.blocks_to_master,
                        per_worker,
                        c
                    )
                }
                Err(e) => format!("error: {e:?}"),
            };
            let Ok(rec) = Rc::try_unwrap(rec) else {
                unreachable!("recorder has one owner after the run")
            };
            let (events, _) = rec.into_inner().into_parts();
            (out, events.len())
        };
        let (off, n_off) = run(false);
        let (on, n_on) = run(true);
        let completed = !on.starts_with("error");
        prop_assert_eq!(off, on);
        prop_assert_eq!(n_off, 0, "an off sink must record nothing");
        if completed {
            prop_assert!(n_on > 0, "a live sink on a completed reactor run must record events");
        }
    }

    /// Histogram quantiles track an exact nearest-rank oracle within the
    /// bucket resolution (log buckets, eight per octave ⇒ ≤ ~9% wide;
    /// the geometric-midpoint representative is within ~4.4% of every
    /// value in its bucket).
    #[test]
    fn histogram_quantiles_match_exact_oracle(
        samples in prop::collection::vec(0.0f64..1.0e9, 1..400),
        q in 0.0f64..=1.0,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.observe(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let est = h.quantile(q).unwrap();
        let tol = exact.abs() * 0.05 + 1e-12;
        prop_assert!(
            (est - exact).abs() <= tol,
            "q={}: est {} vs exact {} (n={})", q, est, exact, samples.len()
        );
    }

    /// Makespan attribution is *conserved* on static runs — the eight
    /// categories sum bit-exactly to the makespan — and on a crash-free
    /// one-port run its `port_busy / makespan` reproduces the BoundGap
    /// port-occupancy metric (same numerator and denominator, different
    /// summation order, so a relative tolerance covers the float noise).
    #[test]
    fn attribution_conserves_static_and_pins_the_port_gap(
        platform in arb_platform(), job in arb_job(), ai in 0usize..7,
    ) {
        let alg = stargemm::core::algorithms::Algorithm::all()[ai];
        prop_assume!(build_policy(&platform, &job, alg).is_ok());
        let rec = RunRecorder::shared();
        let mut policy = build_policy(&platform, &job, alg).unwrap();
        let res = Simulator::new(platform.clone())
            .run_observed(&mut policy, ObsSink::to(rec.clone()));
        let events = drain(rec);
        let Ok(stats) = res else { return Ok(()) };
        let attr = Attribution::from_events(&events, stats.makespan);
        prop_assert!(
            attr.is_conserved(),
            "categories sum {} != makespan {}", attr.categories.total(), attr.makespan
        );
        prop_assert_eq!(attr.categories.crash_rework, 0.0, "no crashes, no rework");
        if stats.port.peak_lanes <= 1 && stats.makespan > 0.0 {
            let gap = stats.port_busy / stats.makespan;
            let got = attr.categories.port_busy / attr.makespan;
            prop_assert!(
                (got - gap).abs() <= 1e-9 * gap.max(1.0),
                "attribution port occupancy {} vs BoundGap port metric {}", got, gap
            );
        }
    }

    /// Conservation holds under jitter and churn too — crash rework and
    /// downtime segments must not open a hole in the timeline.
    #[test]
    fn attribution_conserves_under_jitter_and_churn(scenario in arb_scenario()) {
        let (dp, job) = scenario;
        prop_assume!(AdaptiveMaster::adaptive_het(&dp.base, &job).is_ok());
        let rec = RunRecorder::shared();
        let mut policy = AdaptiveMaster::adaptive_het(&dp.base, &job).unwrap();
        let res = Simulator::new_dyn(dp.clone())
            .run_observed(&mut policy, ObsSink::to(rec.clone()));
        let events = drain(rec);
        let Ok(stats) = res else { return Ok(()) };
        let attr = Attribution::from_events(&events, stats.makespan);
        prop_assert!(
            attr.is_conserved(),
            "categories sum {} != makespan {}", attr.categories.total(), attr.makespan
        );
    }

    /// Conservation across multi-tenant streams (admission queues, LP
    /// re-solves, memory-stall episodes from the multi-job master).
    #[test]
    fn attribution_conserves_streams(seed in 0u64..500, jobs in 2usize..8,
                                     mean in 1.0f64..40.0) {
        let platform = Platform::new(
            "obs-stream",
            vec![
                WorkerSpec::new(0.20, 0.10, 80),
                WorkerSpec::new(0.30, 0.15, 60),
                WorkerSpec::new(0.50, 0.30, 40),
            ],
        );
        let requests = WorkloadSpec {
            tenants: vec![
                TenantSpec::new("light", 1.0, vec![Job::new(3, 2, 4, 2)]),
                TenantSpec::new("heavy", 2.0, vec![Job::new(5, 3, 6, 2)]),
            ],
            arrivals: ArrivalProcess::Open { mean_interarrival: mean },
            jobs,
            seed,
        }
        .generate();
        prop_assume!(MultiJobMaster::new(&platform, &requests, StreamConfig::default()).is_ok());
        let rec = RunRecorder::shared();
        let sink = ObsSink::to(rec.clone());
        let mut policy = MultiJobMaster::new(&platform, &requests, StreamConfig::default())
            .unwrap()
            .with_obs(sink.clone());
        let res = Simulator::new(platform.clone())
            .with_arrivals(MultiJobMaster::arrival_plan(&requests))
            .run_observed(&mut policy, sink);
        drop(policy); // releases the policy's clone of the sink
        let events = drain(rec);
        let Ok(stats) = res else { return Ok(()) };
        let attr = Attribution::from_events(&events, stats.makespan);
        prop_assert!(
            attr.is_conserved(),
            "categories sum {} != makespan {}", attr.categories.total(), attr.makespan
        );
    }

    /// Conservation with DAG-structured jobs in the mix (frontier
    /// promotions, per-task placement, aggregated memory stalls).
    #[test]
    fn attribution_conserves_dag_streams(seed in 0u64..200, panels in 2usize..4,
                                         gap in 0.0f64..20.0) {
        let platform = Platform::new(
            "obs-dag",
            vec![
                WorkerSpec::new(0.20, 0.10, 80),
                WorkerSpec::new(0.30, 0.15, 60),
                WorkerSpec::new(0.50, 0.30, 40),
            ],
        );
        let (dag, _) = stargemm::dag::lu_dag(panels);
        let requests = vec![
            JobRequest { id: 0, tenant: 0, weight: 1.0, job: dag.virtual_job(2), arrival: 0.0 },
            JobRequest {
                id: 1,
                tenant: 1,
                weight: 1.0,
                job: Job::new(3, 2, 4, 2),
                arrival: gap + seed as f64 * 1e-3,
            },
        ];
        let build = || MultiJobMaster::with_dags(
            &platform, &requests, vec![(0, dag.clone())], StreamConfig::default(),
        );
        prop_assume!(build().is_ok());
        let rec = RunRecorder::shared();
        let sink = ObsSink::to(rec.clone());
        let mut policy = build().unwrap().with_obs(sink.clone());
        let res = Simulator::new(platform.clone())
            .with_arrivals(MultiJobMaster::arrival_plan(&requests))
            .run_observed(&mut policy, sink);
        drop(policy);
        let events = drain(rec);
        let Ok(stats) = res else { return Ok(()) };
        let attr = Attribution::from_events(&events, stats.makespan);
        prop_assert!(
            attr.is_conserved(),
            "categories sum {} != makespan {}", attr.categories.total(), attr.makespan
        );
    }

    /// Conservation on federated runs: the critical star's log (local
    /// timeline plus synthesized uplink spans) is attributed against the
    /// *federated* makespan — uplink waits and cross-star idle must
    /// still close the budget exactly.
    #[test]
    fn attribution_conserves_federated(k in 1usize..4, ratio in 0.05f64..2.0,
                                       jobs in 2usize..6) {
        use stargemm::netmodel::NetModelSpec;
        use stargemm::platform::{FedPlatform, FedStar};
        use stargemm::stream::MultiStarMaster;
        let star = Platform::new(
            "obs-fed",
            vec![
                WorkerSpec::new(0.2, 0.1, 60),
                WorkerSpec::new(0.3, 0.15, 60),
                WorkerSpec::new(0.5, 0.3, 40),
            ],
        );
        let uplink_c = ratio * 0.2;
        let fed = FedPlatform::new(
            "obs-fed",
            (0..k)
                .map(|_| FedStar::new(DynPlatform::constant(star.clone()), uplink_c))
                .collect(),
            NetModelSpec::BoundedMultiPort { k, backbone: None },
        );
        let requests = WorkloadSpec {
            tenants: vec![TenantSpec::new("a", 1.0, vec![Job::new(6, 6, 32, 2)])],
            arrivals: ArrivalProcess::ClosedBatch,
            jobs,
            seed: 2008,
        }
        .generate();
        let Ok((run, logs)) = MultiStarMaster::new(fed, StreamConfig::default())
            .run_recorded(&requests) else { return Ok(()) };
        for log in &logs {
            let attr = Attribution::from_events(log, run.makespan);
            prop_assert!(
                attr.is_conserved(),
                "categories sum {} != makespan {}", attr.categories.total(), attr.makespan
            );
        }
    }
}
