//! Determinism guarantees of the kernel/model split and the parallel
//! sweep runner.
//!
//! The DES kernel orders events by `(time, schedule sequence)` with no
//! dependence on hashing, allocation, or thread interleaving, so:
//!
//! * running the same (platform, trace, policy, seed) scenario twice
//!   yields **byte-identical** event traces and statistics;
//! * a parallel sweep returns its results in grid order, so the
//!   aggregated JSON artifact is byte-identical whatever `--threads`
//!   says.

use proptest::prelude::*;
use stargemm::core::algorithms::{build_policy, run_algorithm, Algorithm};
use stargemm::core::Job;
use stargemm::dynamic::model::DynPlatform;
use stargemm::dynamic::{random_scenario, AdaptiveMaster, ScenarioConfig};
use stargemm::platform::{Platform, WorkerSpec};
use stargemm::sim::Simulator;
use stargemm_bench::sweep::SweepSpec;
use stargemm_bench::{parallel_map, Instance};

fn arb_spec() -> impl Strategy<Value = WorkerSpec> {
    (0.05f64..4.0, 0.05f64..4.0, 16usize..400).prop_map(|(c, w, m)| WorkerSpec::new(c, w, m))
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop::collection::vec(arb_spec(), 1..5).prop_map(|specs| Platform::new("prop", specs))
}

fn arb_job() -> impl Strategy<Value = Job> {
    (1usize..10, 1usize..8, 1usize..14).prop_map(|(r, t, s)| Job::new(r, t, s, 4))
}

fn arb_scenario() -> impl Strategy<Value = (DynPlatform, Job)> {
    (arb_platform(), arb_job(), 0u64..1_000, 0usize..3).prop_map(|(p, job, seed, regime)| {
        let cfg = match regime {
            0 => ScenarioConfig {
                c_jitter: 1.0,
                w_jitter: 1.0,
                crash_prob: 0.0,
                segment_len: 10.0,
                horizon: 100.0,
                rejoin_prob: 0.0,
            },
            1 => ScenarioConfig {
                c_jitter: 2.0,
                w_jitter: 1.5,
                crash_prob: 0.0,
                segment_len: 15.0,
                horizon: 300.0,
                rejoin_prob: 0.0,
            },
            _ => ScenarioConfig {
                c_jitter: 1.5,
                w_jitter: 1.5,
                crash_prob: 0.15,
                segment_len: 20.0,
                horizon: 400.0,
                rejoin_prob: 0.5,
            },
        };
        (random_scenario(&p.clone(), cfg, seed), job)
    })
}

/// Byte form of a run: the `Debug` rendering of stats plus every trace
/// entry (floats via `{:?}` are shortest-round-trip, so equal strings
/// mean bit-equal values).
fn run_bytes(
    sim: &Simulator,
    policy_of: impl Fn() -> Box<dyn stargemm::sim::MasterPolicy>,
) -> String {
    let mut policy = policy_of();
    match sim.clone().with_trace(true).run_traced(policy.as_mut()) {
        Ok((stats, trace)) => format!("{stats:?}\n{trace:?}"),
        Err(e) => format!("error: {e:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Static platforms: two runs of the same scenario are byte-identical.
    #[test]
    fn static_runs_are_byte_identical(platform in arb_platform(), job in arb_job(),
                                      ai in 0usize..7) {
        let alg = Algorithm::all()[ai];
        prop_assume!(build_policy(&platform, &job, alg).is_ok());
        let sim = Simulator::new(platform.clone());
        let bytes = |_| {
            run_bytes(&sim, || Box::new(build_policy(&platform, &job, alg).unwrap()))
        };
        prop_assert_eq!(bytes(0), bytes(1));
    }

    /// Dynamic platforms (cost traces + churn): same scenario, same seed
    /// → byte-identical trace and stats, run-to-run and across clones.
    #[test]
    fn dynamic_runs_are_byte_identical(scenario in arb_scenario()) {
        let (dp, job) = scenario;
        prop_assume!(AdaptiveMaster::adaptive_het(&dp.base, &job).is_ok());
        let sim = Simulator::new_dyn(dp.clone());
        let bytes = |s: &Simulator| {
            run_bytes(s, || Box::new(AdaptiveMaster::adaptive_het(&dp.base, &job).unwrap()))
        };
        let twin = sim.clone();
        prop_assert_eq!(bytes(&sim), bytes(&sim));
        prop_assert_eq!(bytes(&sim), bytes(&twin));
    }

    /// A scenario run alone equals the same scenario run inside a
    /// parallel sweep next to other scenarios, for every thread count.
    #[test]
    fn sweep_runs_equal_solo_runs(scenario in arb_scenario(), extra in arb_scenario()) {
        let (dp, job) = scenario;
        prop_assume!(AdaptiveMaster::adaptive_het(&dp.base, &job).is_ok());
        prop_assume!(AdaptiveMaster::adaptive_het(&extra.0.base, &extra.1).is_ok());
        let grid = [(dp.clone(), job), extra.clone(), (dp.clone(), job)];
        let solo = run_scenario(&dp, &job);
        for threads in [1usize, 3] {
            let swept = parallel_map(threads, &grid, |_, (d, j)| run_scenario(d, j));
            prop_assert_eq!(&swept[0], &solo, "threads = {}", threads);
            prop_assert_eq!(&swept[2], &solo, "threads = {}", threads);
        }
    }
}

fn run_scenario(dp: &DynPlatform, job: &Job) -> String {
    let mut policy = AdaptiveMaster::adaptive_het(&dp.base, job).unwrap();
    match Simulator::new_dyn(dp.clone())
        .with_trace(true)
        .run_traced(&mut policy)
    {
        Ok((stats, trace)) => format!("{stats:?}\n{trace:?}"),
        Err(e) => format!("error: {e:?}"),
    }
}

/// The aggregated JSON of a whole sweep is byte-identical across thread
/// counts (the artifact contract of `SweepOutcome::to_json`).
#[test]
fn sweep_json_is_thread_count_independent() {
    let platform = Platform::new(
        "sweep-json",
        vec![
            WorkerSpec::new(0.2, 0.1, 60),
            WorkerSpec::new(0.3, 0.15, 40),
            WorkerSpec::new(0.5, 0.3, 40),
        ],
    );
    let jobs: Vec<Job> = (2..8).map(|r| Job::new(r, 5, r + 2, 4)).collect();
    let json: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            SweepSpec::new("det", threads)
                .run(&jobs, |job| {
                    run_algorithm(&platform, job, Algorithm::Het).unwrap()
                })
                .to_json()
        })
        .collect();
    assert_eq!(json[0], json[1]);
    assert_eq!(json[0], json[2]);
    assert!(json[0].contains("\"experiment\": \"det\""));
    assert!(json[0].contains("\"makespan\""));
}

/// `Instance::run_grid` (the figure protocol) is equally order-stable.
#[test]
fn instance_grid_is_thread_count_independent() {
    let platform = Platform::new(
        "grid",
        vec![WorkerSpec::new(0.5, 0.3, 40), WorkerSpec::new(1.0, 0.6, 20)],
    );
    let grid: Vec<(Platform, Job)> = (3..7)
        .map(|r| (platform.clone(), Job::new(r, 4, 6, 2)))
        .collect();
    let render = |threads| {
        Instance::run_grid(&grid, threads)
            .iter()
            .map(|i| {
                format!(
                    "{:?}|",
                    i.results.iter().map(|r| &r.stats).collect::<Vec<_>>()
                )
            })
            .collect::<String>()
    };
    let serial = render(1);
    assert_eq!(serial, render(2));
    assert_eq!(serial, render(8));
}
