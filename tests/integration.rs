//! Cross-crate integration tests: every algorithm, on every paper
//! platform preset, executes to completion with the invariants the
//! paper's model promises — exact coverage of C, strict memory
//! discipline, one-port serialization, and consistency between the
//! discrete-event simulator and the threaded runtime.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stargemm::core::algorithms::{build_policy, run_algorithm, Algorithm};
use stargemm::core::geometry::validate_coverage;
use stargemm::core::steady::makespan_lower_bound;
use stargemm::core::Job;
use stargemm::linalg::verify::{tolerance_for, verify_product};
use stargemm::linalg::BlockMatrix;
use stargemm::net::{NetOptions, NetRuntime};
use stargemm::platform::{presets, Platform, WorkerSpec};
use stargemm::sim::trace::TraceKind;
use stargemm::sim::Simulator;

/// A scaled-down cousin of every paper platform (memory shrunk so small
/// jobs still exercise multi-chunk schedules).
fn mini_platforms() -> Vec<Platform> {
    let scale = |p: &Platform, f: usize| {
        Platform::new(
            format!("{}-mini", p.name),
            p.workers()
                .iter()
                .map(|s| WorkerSpec::new(s.c * 100.0, s.w * 100.0, (s.m / f).max(12)))
                .collect(),
        )
    };
    vec![
        scale(&presets::het_memory(), 400),
        scale(&presets::het_comm(), 400),
        scale(&presets::het_comp(), 400),
        scale(&presets::fully_het(4.0), 400),
    ]
}

#[test]
fn all_algorithms_on_all_mini_platforms() {
    let job = Job::new(12, 10, 20, 4);
    for platform in mini_platforms() {
        for alg in Algorithm::all() {
            let stats = run_algorithm(&platform, &job, alg)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", alg.name(), platform.name));
            assert_eq!(
                stats.total_updates,
                job.total_updates(),
                "{} on {}",
                alg.name(),
                platform.name
            );
            assert_eq!(stats.blocks_to_master, job.c_blocks());
            // Strict memory discipline.
            for (w, ws) in stats.per_worker.iter().enumerate() {
                assert!(
                    ws.mem_high_water <= platform.worker(w).m as u64,
                    "{} on {}: worker {w} peak {} > m {}",
                    alg.name(),
                    platform.name,
                    ws.mem_high_water,
                    platform.worker(w).m
                );
            }
            // No schedule beats the steady-state bound.
            let bound = makespan_lower_bound(&platform, &job);
            assert!(
                stats.makespan >= bound * 0.999,
                "{} on {}: makespan {} below steady-state bound {bound}",
                alg.name(),
                platform.name,
                stats.makespan
            );
        }
    }
}

#[test]
fn coverage_is_exact_for_every_algorithm() {
    let job = Job::new(9, 7, 15, 4);
    let platform = mini_platforms().remove(3);
    for alg in Algorithm::all() {
        let mut policy = build_policy(&platform, &job, alg).unwrap();
        Simulator::new(platform.clone()).run(&mut policy).unwrap();
        let geoms: Vec<_> = policy.geoms().copied().collect();
        validate_coverage(&job, &geoms).unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
    }
}

#[test]
fn one_port_never_overlaps_transfers() {
    let job = Job::new(8, 6, 12, 4);
    for platform in mini_platforms() {
        for alg in [
            Algorithm::Het,
            Algorithm::Oddoml,
            Algorithm::Bmm,
            Algorithm::Orroml,
        ] {
            let mut policy = build_policy(&platform, &job, alg).unwrap();
            let sim = Simulator::new(platform.clone()).with_trace(true);
            let (_, trace) = sim.run_traced(&mut policy).unwrap();
            let mut transfers: Vec<(f64, f64)> = trace
                .iter()
                .filter(|t| !matches!(t.kind, TraceKind::Compute { .. }))
                .map(|t| (t.start, t.end))
                .collect();
            transfers.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in transfers.windows(2) {
                assert!(
                    w[0].1 <= w[1].0 + 1e-9,
                    "{} on {}: port intervals overlap: {w:?}",
                    alg.name(),
                    platform.name
                );
            }
        }
    }
}

#[test]
fn workers_compute_serially_but_overlap_the_port() {
    // Per-worker compute intervals never overlap each other (a worker is
    // a single CPU), and for a communication-heavy run the port and some
    // worker's compute do overlap somewhere (the whole point of the
    // double-buffered layout).
    let job = Job::new(8, 8, 12, 4);
    let platform = Platform::new(
        "overlap",
        vec![WorkerSpec::new(0.4, 0.5, 40), WorkerSpec::new(0.4, 0.5, 40)],
    );
    let mut policy = build_policy(&platform, &job, Algorithm::Oddoml).unwrap();
    let sim = Simulator::new(platform).with_trace(true);
    let (_, trace) = sim.run_traced(&mut policy).unwrap();
    for w in 0..2usize {
        let mut computes: Vec<(f64, f64)> = trace
            .iter()
            .filter(|t| t.worker == w && matches!(t.kind, TraceKind::Compute { .. }))
            .map(|t| (t.start, t.end))
            .collect();
        computes.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in computes.windows(2) {
            assert!(pair[0].1 <= pair[1].0 + 1e-9, "worker {w} computes overlap");
        }
    }
    let overlap_exists = trace.iter().any(|c| {
        matches!(c.kind, TraceKind::Compute { .. })
            && trace.iter().any(|t| {
                !matches!(t.kind, TraceKind::Compute { .. }) && t.start < c.end && c.start < t.end
            })
    });
    assert!(overlap_exists, "no comm/compute overlap found at all");
}

#[test]
fn simulator_and_runtime_agree_on_communication_volume() {
    let job = Job::new(6, 5, 9, 4);
    let platform = Platform::new(
        "consistency",
        vec![
            WorkerSpec::new(1e-5, 1e-5, 40),
            WorkerSpec::new(2e-5, 2e-5, 24),
        ],
    );
    for alg in [Algorithm::Het, Algorithm::Oddoml, Algorithm::Bmm] {
        let mut sim_policy = build_policy(&platform, &job, alg).unwrap();
        let sim_stats = Simulator::new(platform.clone())
            .run(&mut sim_policy)
            .unwrap();

        let mut rng = StdRng::seed_from_u64(5);
        let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
        let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
        let mut c = BlockMatrix::zeros(job.r, job.s, job.q);
        let mut net_policy = build_policy(&platform, &job, alg).unwrap();
        let rt = NetRuntime::new(platform.clone()).with_options(NetOptions {
            time_scale: 1e-6,
            ..Default::default()
        });
        let net_stats = rt.run(&mut net_policy, &a, &b, &mut c).unwrap();

        assert_eq!(
            sim_stats.total_updates,
            net_stats.total_updates,
            "{}",
            alg.name()
        );
        assert_eq!(sim_stats.blocks_to_master, net_stats.blocks_to_master);
        if alg == Algorithm::Het {
            // Static assignment: the chunk plan is timing-independent, so
            // the full communication volume must match exactly.
            assert_eq!(sim_stats.chunks, net_stats.chunks);
            assert_eq!(sim_stats.blocks_to_workers, net_stats.blocks_to_workers);
        } else {
            // Dynamic pools carve strips by real arrival order; with
            // heterogeneous μ_i the totals may differ slightly, but both
            // engines must ship at least one load+retrieval per C block.
            assert!(net_stats.blocks_to_workers >= job.c_blocks());
        }
    }
}

#[test]
fn distributed_product_is_numerically_exact() {
    let job = Job::new(8, 6, 10, 8);
    let platform = Platform::new(
        "exactness",
        vec![
            WorkerSpec::new(1e-5, 1e-5, 60),
            WorkerSpec::new(1e-5, 1e-5, 30),
            WorkerSpec::new(2e-5, 2e-5, 16),
        ],
    );
    let mut rng = StdRng::seed_from_u64(77);
    let a = BlockMatrix::random(job.r, job.t, job.q, &mut rng);
    let b = BlockMatrix::random(job.t, job.s, job.q, &mut rng);
    let c0 = BlockMatrix::random(job.r, job.s, job.q, &mut rng);
    for alg in Algorithm::all() {
        let mut policy = build_policy(&platform, &job, alg).unwrap();
        let rt = NetRuntime::new(platform.clone()).with_options(NetOptions {
            time_scale: 1e-6,
            ..Default::default()
        });
        let mut c = c0.clone();
        rt.run(&mut policy, &a, &b, &mut c).unwrap();
        let report = verify_product(&c, &c0, &a, &b, tolerance_for(job.t * job.q));
        assert!(report.passed(), "{}: {report:?}", alg.name());
    }
}

#[test]
fn het_decision_procedure_is_reproducible() {
    let platform = mini_platforms().remove(0);
    let job = Job::new(10, 8, 14, 4);
    let a = run_algorithm(&platform, &job, Algorithm::Het).unwrap();
    let b = run_algorithm(&platform, &job, Algorithm::Het).unwrap();
    assert_eq!(a, b);
}

#[test]
fn double_buffered_algorithms_overlap_comm_and_compute() {
    use stargemm::sim::analysis::analyze;
    let job = Job::new(10, 8, 14, 4);
    let platform = Platform::new(
        "balance",
        vec![WorkerSpec::new(0.3, 0.3, 60), WorkerSpec::new(0.3, 0.3, 60)],
    );
    for alg in [Algorithm::Het, Algorithm::Oddoml, Algorithm::Orroml] {
        let mut policy = build_policy(&platform, &job, alg).unwrap();
        let sim = Simulator::new(platform.clone()).with_trace(true);
        let (stats, trace) = sim.run_traced(&mut policy).unwrap();
        let a = analyze(&trace, platform.len());
        assert!((a.horizon - stats.makespan).abs() < 1e-9);
        assert!(
            a.overlap_fraction > 0.2,
            "{}: overlap {:.3} — the window-2 layout must hide communication",
            alg.name(),
            a.overlap_fraction
        );
        // Conservation: per-worker compute time in the analysis equals
        // the engine's accounting.
        for (w, ws) in stats.per_worker.iter().enumerate() {
            assert!((a.workers[w].compute - ws.busy_time).abs() < 1e-9);
        }
    }
}

#[test]
fn event_cap_aborts_runaway_runs() {
    let job = Job::new(10, 8, 14, 4);
    let platform = mini_platforms().remove(0);
    let mut policy = build_policy(&platform, &job, Algorithm::Oddoml).unwrap();
    let err = Simulator::new(platform)
        .with_max_events(3)
        .run(&mut policy)
        .unwrap_err();
    assert!(err.to_string().contains("event cap"), "{err}");
}

#[test]
fn makespan_scales_with_matrix_size() {
    // Figures 4-6 sanity: bigger B → proportionally longer makespans for
    // every algorithm.
    let platform = mini_platforms().remove(2);
    for alg in [Algorithm::Het, Algorithm::Oddoml, Algorithm::Bmm] {
        let small = run_algorithm(&platform, &Job::new(8, 8, 8, 4), alg).unwrap();
        let large = run_algorithm(&platform, &Job::new(8, 8, 24, 4), alg).unwrap();
        assert!(
            large.makespan > 2.0 * small.makespan,
            "{}: {} vs {}",
            alg.name(),
            small.makespan,
            large.makespan
        );
    }
}
