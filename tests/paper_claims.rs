//! Property-based checks of the paper's headline claims.
//!
//! Two kinds of statement are verified on random instances:
//!
//! 1. **No schedule beats the steady state** (a theorem): every
//!    algorithm's achieved makespan is at least the bandwidth-centric LP
//!    lower bound of Section 5 / Table 1 (`core::steady`) and at least
//!    the trivial compute-/port-volume bounds derived here from first
//!    principles. This holds on *arbitrary* random platforms.
//! 2. **`Het` never loses to `Bmm`** (the paper's experimental headline,
//!    demonstrated by the `src/lib.rs` doctest and Section 6): this is an
//!    empirical claim about the paper's platform regime, not a theorem —
//!    on adversarial platforms `Het`'s resource selection can misfire.
//!    It is encoded the way the paper supports it: over the Figure-7
//!    random-platform generator, `Het` (a) never loses by more than a
//!    small bounded regret on any single instance, and (b) wins by a
//!    wide margin in the aggregate (geometric-mean makespan ratio).
//!    Deterministic strict domination is additionally pinned on the
//!    paper's preset platforms for the paper-shaped (non-cubic) jobs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stargemm::core::algorithms::{run_algorithm, Algorithm};
use stargemm::core::steady::makespan_lower_bound;
use stargemm::core::Job;
use stargemm::platform::random::{random_platform, RandomPlatformConfig};
use stargemm::platform::{presets, Platform, WorkerSpec};

/// Memory-shrunk copy of a platform (as in `tests/integration.rs`), so
/// small jobs still exercise multi-chunk schedules.
fn shrink_memory(p: &Platform) -> Platform {
    Platform::new(
        format!("{}-mini", p.name),
        p.workers()
            .iter()
            .map(|s| WorkerSpec::new(s.c, s.w, (s.m / 400).max(12)))
            .collect(),
    )
}

/// A paper-regime platform: the Figure-7 generator (heterogeneity ratio
/// up to 4 around the base worker) with test-sized memory.
fn arb_paper_platform() -> impl Strategy<Value = Platform> {
    (2usize..9, 1.0f64..4.0, 0u64..1 << 48).prop_map(|(p, max_ratio, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        shrink_memory(&random_platform(
            RandomPlatformConfig { p, max_ratio },
            "paper-regime",
            &mut rng,
        ))
    })
}

/// Arbitrary (adversarial) platforms for the theorem-grade properties.
fn arb_any_platform() -> impl Strategy<Value = Platform> {
    prop::collection::vec(
        (0.05f64..3.0, 0.05f64..3.0, 12usize..300).prop_map(|(c, w, m)| WorkerSpec::new(c, w, m)),
        1..5,
    )
    .prop_map(|specs| Platform::new("claims", specs))
}

fn arb_job() -> impl Strategy<Value = Job> {
    (1usize..10, 1usize..10, 1usize..16).prop_map(|(r, t, s)| Job::new(r, t, s, 4))
}

fn arb_paper_job() -> impl Strategy<Value = Job> {
    (4usize..14, 4usize..14, 4usize..14).prop_map(|(r, t, s)| Job::new(r, t, s, 4))
}

/// Total updates cannot finish faster than all workers computing flat
/// out, nor than the port shipping one C load + retrieval per C block
/// over the fastest link (one-port model).
fn volume_lower_bound(platform: &Platform, job: &Job) -> f64 {
    let updates = job.total_updates() as f64;
    let min_w = platform
        .workers()
        .iter()
        .map(|s| s.w)
        .fold(f64::INFINITY, f64::min);
    let inv_w_sum: f64 = platform.workers().iter().map(|s| 1.0 / s.w).sum();
    let min_c = platform
        .workers()
        .iter()
        .map(|s| s.c)
        .fold(f64::INFINITY, f64::min);
    let compute = (updates / inv_w_sum).max(min_w);
    let port = 2.0 * job.c_blocks() as f64 * min_c;
    compute.max(port)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn no_algorithm_beats_the_steady_state_bound(
        platform in arb_any_platform(),
        job in arb_job(),
        ai in 0usize..7,
    ) {
        let alg = Algorithm::all()[ai];
        if let Ok(stats) = run_algorithm(&platform, &job, alg) {
            let steady = makespan_lower_bound(&platform, &job);
            prop_assert!(
                stats.makespan >= steady * 0.999,
                "{}: makespan {} < steady-state bound {steady}",
                alg.name(), stats.makespan
            );
            let volume = volume_lower_bound(&platform, &job);
            prop_assert!(
                stats.makespan >= volume * 0.999,
                "{}: makespan {} < volume bound {volume}",
                alg.name(), stats.makespan
            );
        }
    }

    #[test]
    fn het_regret_against_bmm_is_bounded_in_the_paper_regime(
        platform in arb_paper_platform(),
        job in arb_paper_job(),
    ) {
        // Observed worst case over thousands of Figure-7 instances is
        // ≈1.09; anything above 1.25 means Het's selection regressed.
        let het = run_algorithm(&platform, &job, Algorithm::Het);
        let bmm = run_algorithm(&platform, &job, Algorithm::Bmm);
        let (Ok(het), Ok(bmm)) = (het, bmm) else { return Ok(()); };
        prop_assert!(
            het.makespan <= bmm.makespan * 1.25,
            "Het {} loses badly to Bmm {} on {:?}",
            het.makespan, bmm.makespan, platform
        );
    }

    #[test]
    fn het_regret_against_homogeneous_reductions_is_bounded(
        platform in arb_paper_platform(),
        job in arb_paper_job(),
    ) {
        // Section 5's motivation: discarding heterogeneity (Hom / HomI)
        // should not beat Het by more than scheduling noise (observed
        // worst ≈1.20).
        let Ok(het) = run_algorithm(&platform, &job, Algorithm::Het) else {
            return Ok(());
        };
        for alg in [Algorithm::Hom, Algorithm::HomImproved] {
            if let Ok(hom) = run_algorithm(&platform, &job, alg) {
                prop_assert!(
                    het.makespan <= hom.makespan * 1.35,
                    "Het {} loses badly to {} {}",
                    het.makespan, alg.name(), hom.makespan
                );
            }
        }
    }
}

/// The aggregate form of the headline: over a fixed-seed sample of the
/// Figure-7 regime, `Het` beats `Bmm` by a wide margin in geometric mean
/// (the paper reports ≈35%; assert a conservative 25%) and beats the
/// homogeneous reductions on average.
#[test]
fn het_wins_in_aggregate_over_the_paper_regime() {
    let mut rng = StdRng::seed_from_u64(20260728);
    let mut log_ratio_bmm = 0.0f64;
    let mut n_bmm = 0u32;
    let mut log_ratio_hom = 0.0f64;
    let mut n_hom = 0u32;
    for i in 0..300 {
        let cfg = RandomPlatformConfig {
            p: rng.random_range(2..9usize),
            max_ratio: rng.random_range(1.0..4.0f64),
        };
        let platform = shrink_memory(&random_platform(cfg, format!("agg{i}"), &mut rng));
        let job = Job::new(
            rng.random_range(4..14usize),
            rng.random_range(4..14usize),
            rng.random_range(4..14usize),
            4,
        );
        let Ok(het) = run_algorithm(&platform, &job, Algorithm::Het) else {
            continue;
        };
        if let Ok(bmm) = run_algorithm(&platform, &job, Algorithm::Bmm) {
            log_ratio_bmm += (het.makespan / bmm.makespan).ln();
            n_bmm += 1;
        }
        for alg in [Algorithm::Hom, Algorithm::HomImproved] {
            if let Ok(hom) = run_algorithm(&platform, &job, alg) {
                log_ratio_hom += (het.makespan / hom.makespan).ln();
                n_hom += 1;
            }
        }
    }
    assert!(n_bmm >= 200, "too few comparable instances: {n_bmm}");
    let gmean_bmm = (log_ratio_bmm / n_bmm as f64).exp();
    assert!(
        gmean_bmm < 0.75,
        "Het's aggregate win over Bmm collapsed: gmean ratio {gmean_bmm}"
    );
    let gmean_hom = (log_ratio_hom / n_hom as f64).exp();
    assert!(
        gmean_hom < 0.97,
        "Het's aggregate win over Hom/HomI collapsed: gmean ratio {gmean_hom}"
    );
}

/// Deterministic strict domination on the paper's preset platforms for
/// paper-shaped (non-cubic) jobs — the doctest's claim, pinned across
/// every Section 6 platform.
#[test]
fn het_dominates_bmm_on_every_paper_preset() {
    let platforms = [
        presets::homogeneous(8),
        presets::het_memory(),
        presets::het_comm(),
        presets::het_comp(),
        presets::fully_het(2.0),
        presets::fully_het(4.0),
        presets::lyon(true),
        presets::lyon(false),
    ];
    let jobs = [
        Job::new(12, 10, 20, 4),
        Job::new(6, 12, 9, 4),
        Job::new(16, 4, 10, 4),
    ];
    for preset in &platforms {
        let platform = shrink_memory(preset);
        for job in &jobs {
            let het = run_algorithm(&platform, job, Algorithm::Het)
                .unwrap_or_else(|e| panic!("Het failed on {}: {e}", platform.name));
            let bmm = run_algorithm(&platform, job, Algorithm::Bmm)
                .unwrap_or_else(|e| panic!("Bmm failed on {}: {e}", platform.name));
            assert!(
                het.makespan <= bmm.makespan * (1.0 + 1e-9),
                "{} {:?}: Het {} > Bmm {}",
                platform.name,
                job,
                het.makespan,
                bmm.makespan
            );
        }
    }
}
