//! DAG-job properties (workspace-level, fixed seed in CI):
//!
//! * **Precedence**: on arbitrary platforms and random DAGs, the
//!   engine's completion order never violates a dependency edge.
//! * **Lower bound** (acceptance): no makespan beats
//!   `dag_makespan_lower_bound` — the max of the critical path, the
//!   communication volume, and the steady-state capacity.
//! * **Degeneracy**: a single-chain DAG on one worker has no scheduling
//!   freedom, so the DAG master reproduces the sequential static-queue
//!   schedule bitwise ([`RunStats`] equality, float fields included).

use proptest::prelude::*;
use stargemm::core::cpath::dag_makespan_lower_bound;
use stargemm::core::geometry::plan_chunk;
use stargemm::core::stream::{Serving, StreamingMaster};
use stargemm::dag::{DagJob, DagMaster, TaskSpec};
use stargemm::platform::{Platform, WorkerSpec};
use stargemm::sim::Simulator;

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop::collection::vec((0.05f64..2.0, 0.05f64..2.0, 12usize..120), 1..5).prop_map(|specs| {
        Platform::new(
            "prop",
            specs
                .into_iter()
                .map(|(c, w, m)| WorkerSpec::new(c, w, m))
                .collect(),
        )
    })
}

/// Random DAGs: each task draws a width and a predecessor mask over the
/// earlier tasks, so edges always point forward (acyclic by
/// construction) while the density varies from chains to near-cliques.
fn arb_dag() -> impl Strategy<Value = DagJob> {
    prop::collection::vec((1usize..4, 0u32..u32::MAX), 1..12).prop_map(|tasks| {
        let specs = tasks
            .iter()
            .enumerate()
            .map(|(t, &(width, mask))| {
                let deps = (0..t).filter(|&p| mask & (1 << (p % 32)) != 0).collect();
                TaskSpec::new(format!("t{t}"), width, deps)
            })
            .collect();
        DagJob::new("prop-dag", specs).expect("forward edges cannot cycle")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn completion_respects_precedence_and_the_lower_bound(
        platform in arb_platform(),
        dag in arb_dag(),
        q in 1usize..4,
    ) {
        // Skip platforms too small for the widest task (typed error,
        // pinned separately in the dag crate's unit tests).
        prop_assume!(2 * dag.max_width() < platform.workers().iter().map(|s| s.m).max().unwrap());
        let bound = dag_makespan_lower_bound(&platform, &dag.task_costs(), dag.preds_all());
        let mut master = DagMaster::new("prop", &platform, dag, q, 2);
        let stats = Simulator::new(platform).run(&mut master).unwrap();
        prop_assert!(master.is_complete());
        let order = master.completion_order();
        prop_assert_eq!(order.len(), master.dag().len());
        prop_assert!(master.dag().is_topological(order), "order {:?}", order);
        prop_assert!(
            stats.makespan >= bound - 1e-9,
            "makespan {} beats the bound {}", stats.makespan, bound
        );
    }

    #[test]
    fn single_chain_degenerates_to_the_sequential_schedule(
        widths in prop::collection::vec(1usize..5, 1..8),
        c in 0.05f64..2.0,
        w in 0.05f64..2.0,
        q in 1usize..4,
    ) {
        let m = 2 * widths.iter().max().unwrap() + 1;
        let platform = Platform::new("chain", vec![WorkerSpec::new(c, w, m)]);
        let dag = DagJob::chain("chain", &widths);
        let virt = dag.virtual_job(q);
        let queue = (0..dag.len())
            .map(|t| plan_chunk(&virt, t as u32, 0, 0, dag.col0(t), 1, dag.width(t), 1))
            .collect();
        let mut base =
            StreamingMaster::new_static("chain", virt, vec![queue], Serving::DemandDriven, 2);
        let want = Simulator::new(platform.clone()).run(&mut base).unwrap();

        let mut master = DagMaster::new("chain", &platform, dag, q, 2);
        let got = Simulator::new(platform).run(&mut master).unwrap();
        prop_assert!(master.is_complete());
        prop_assert_eq!(got, want);
    }
}
