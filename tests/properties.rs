//! Property-based tests (proptest) of the core invariants on random
//! platforms and jobs.

use proptest::prelude::*;
use stargemm::core::algorithms::{run_algorithm, Algorithm};
use stargemm::core::bounds::{ccr_lower_bound, maxreuse_ccr};
use stargemm::core::layout::{mu_no_overlap, mu_overlapped, mu_single, toledo_g};
use stargemm::core::maxreuse::simulate_max_reuse;
use stargemm::core::select_het::{allocate, SelectionVariant};
use stargemm::core::steady::{bandwidth_centric, lp_throughput, makespan_lower_bound};
use stargemm::core::{geometry::validate_coverage, Job};
use stargemm::platform::{Platform, WorkerSpec};

fn arb_spec() -> impl Strategy<Value = WorkerSpec> {
    (0.05f64..4.0, 0.05f64..4.0, 12usize..400).prop_map(|(c, w, m)| WorkerSpec::new(c, w, m))
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop::collection::vec(arb_spec(), 1..6).prop_map(|specs| Platform::new("prop", specs))
}

fn arb_job() -> impl Strategy<Value = Job> {
    (1usize..14, 1usize..12, 1usize..20).prop_map(|(r, t, s)| Job::new(r, t, s, 4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn layouts_are_feasible_and_maximal(m in 0usize..100_000) {
        let mu = mu_single(m);
        prop_assert!(mu == 0 || 1 + mu + mu * mu <= m);
        prop_assert!(1 + (mu + 1) + (mu + 1) * (mu + 1) > m);
        let mo = mu_overlapped(m);
        prop_assert!(mo * mo + 4 * mo <= m);
        prop_assert!((mo + 1) * (mo + 1) + 4 * (mo + 1) > m);
        let mn = mu_no_overlap(m);
        prop_assert!(mn * mn + 2 * mn <= m);
        let g = toledo_g(m);
        prop_assert!(3 * g * g <= m);
        // Ordering: the single-worker layout always fits at least as big
        // a mu as the double-buffered one.
        prop_assert!(mu >= mo || m < 3);
    }

    #[test]
    fn maxreuse_ccr_always_respects_the_bound(m in 7usize..50_000, t in 1usize..2_000) {
        prop_assert!(maxreuse_ccr(m, t) >= ccr_lower_bound(m));
    }

    #[test]
    fn greedy_steady_state_equals_the_lp(platform in arb_platform(), r in 1usize..200) {
        prop_assume!(platform.workers().iter().any(|s| mu_overlapped(s.m).min(r) > 0));
        let greedy = bandwidth_centric(&platform, r).throughput;
        let lp = lp_throughput(&platform, r);
        prop_assert!((greedy - lp).abs() <= 1e-6 * lp.max(1.0),
            "greedy {greedy} vs lp {lp}");
    }

    #[test]
    fn every_het_variant_covers_c(platform in arb_platform(), job in arb_job(),
                                  vi in 0usize..8) {
        prop_assume!(platform.workers().iter().any(|s| mu_overlapped(s.m) > 0));
        let v = SelectionVariant::all()[vi];
        let alloc = allocate(&platform, &job, v);
        let geoms: Vec<_> = alloc.queues.iter().flatten().map(|c| c.geom).collect();
        prop_assert!(validate_coverage(&job, &geoms).is_ok());
    }

    #[test]
    fn algorithms_complete_with_memory_discipline(
        platform in arb_platform(),
        job in arb_job(),
        ai in 0usize..7,
    ) {
        let alg = Algorithm::all()[ai];
        match run_algorithm(&platform, &job, alg) {
            Err(_) => {
                // Only acceptable when the layout truly does not fit on
                // any worker.
                let fits = platform.workers().iter().any(|s| match alg {
                    Algorithm::Bmm => toledo_g(s.m) > 0,
                    _ => mu_overlapped(s.m) > 0,
                });
                prop_assert!(!fits, "{} failed on a feasible platform", alg.name());
            }
            Ok(stats) => {
                prop_assert_eq!(stats.total_updates, job.total_updates());
                prop_assert_eq!(stats.blocks_to_master, job.c_blocks());
                for (w, ws) in stats.per_worker.iter().enumerate() {
                    prop_assert!(ws.mem_high_water <= platform.worker(w).m as u64);
                }
                // Makespan never beats the steady-state bound.
                let bound = makespan_lower_bound(&platform, &job);
                prop_assert!(stats.makespan >= bound * 0.999);
                // Communication accounting is self-consistent: the master
                // ships at least one C load + retrieval per block plus A/B
                // fragments.
                prop_assert!(stats.blocks_to_workers >= job.c_blocks());
            }
        }
    }

    #[test]
    fn maxreuse_simulation_matches_analytic_ccr(
        mexp in 3usize..9, tmul in 1usize..5,
    ) {
        // Memory sized so chunks divide evenly: m = mu^2 + 2 mu.
        let mu = 1usize << (mexp - 2);
        let m = mu * mu + 2 * mu;
        let t = tmul * 10;
        let job = Job::new(mu, t, 2 * mu, 4);
        let stats = simulate_max_reuse(&job, WorkerSpec::new(1.0, 1.0, m)).unwrap();
        let expect = 2.0 / t as f64 + 2.0 / mu as f64;
        prop_assert!((stats.ccr() - expect).abs() < 1e-9,
            "ccr {} vs {}", stats.ccr(), expect);
    }

    #[test]
    fn relative_metrics_are_at_least_one(platform in arb_platform(), job in arb_job()) {
        prop_assume!(platform.workers().iter().any(|s| mu_overlapped(s.m) > 0));
        let mut makespans = Vec::new();
        for alg in [Algorithm::Het, Algorithm::Oddoml, Algorithm::Orroml] {
            if let Ok(s) = run_algorithm(&platform, &job, alg) {
                makespans.push(s.makespan);
            }
        }
        prop_assume!(!makespans.is_empty());
        let best = makespans.iter().copied().fold(f64::INFINITY, f64::min);
        for m in makespans {
            prop_assert!(m / best >= 1.0 - 1e-12);
        }
    }
}
